#include "engine/analysis_engine.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <unordered_map>
#include <utility>

#include "chain/latency.hpp"
#include "common/error.hpp"
#include "disparity/dag_dp.hpp"
#include "disparity/pair_kernel.hpp"
#include "engine/thread_pool.hpp"
#include "graph/algorithms.hpp"
#include "obs/tracer.hpp"

namespace ceta {

namespace {

/// Wall-clock duration for the engine's compute histograms.
Duration elapsed_since(std::chrono::steady_clock::time_point t0) {
  return Duration::ns(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
}

/// FNV-1a over a byte-sized stream of values.
std::size_t hash_mix(std::size_t seed, std::uint64_t v) {
  seed ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ull + (seed << 6) +
          (seed >> 2);
  return seed;
}

}  // namespace

std::size_t AnalysisEngine::ChainKeyHash::operator()(const ChainKey& k) const {
  std::size_t h = hash_mix(0, static_cast<std::uint64_t>(k.method));
  for (const TaskId id : k.chain) h = hash_mix(h, id);
  return h;
}

std::size_t AnalysisEngine::ReportKeyHash::operator()(
    const ReportKey& k) const {
  std::size_t h = hash_mix(0, k.task);
  h = hash_mix(h, static_cast<std::uint64_t>(k.method));
  h = hash_mix(h, static_cast<std::uint64_t>(k.hop_method));
  h = hash_mix(h, k.path_cap);
  h = hash_mix(h, static_cast<std::uint64_t>(k.truncation));
  h = hash_mix(h, static_cast<std::uint64_t>(k.keep_pairs));
  h = hash_mix(h, k.top_k);
  h = hash_mix(h, static_cast<std::uint64_t>(k.backend));
  return h;
}

AnalysisEngine::Instruments::Instruments(obs::MetricsRegistry& r)
    : rta_runs(r.counter("engine.rta.runs")),
      hop_hits(r.counter("engine.hop.hits")),
      hop_misses(r.counter("engine.hop.misses")),
      chain_bound_hits(r.counter("engine.chain_bounds.hits")),
      chain_bound_misses(r.counter("engine.chain_bounds.misses")),
      chain_set_hits(r.counter("engine.chain_sets.hits")),
      chain_set_misses(r.counter("engine.chain_sets.misses")),
      report_hits(r.counter("engine.reports.hits")),
      report_misses(r.counter("engine.reports.misses")),
      hop_stale(r.counter("engine.hop.stale")),
      chain_bound_stale(r.counter("engine.chain_bounds.stale")),
      chain_set_stale(r.counter("engine.chain_sets.stale")),
      report_stale(r.counter("engine.reports.stale")),
      mutate_commits(r.counter("engine.mutate.commits")),
      mutate_edits(r.counter("engine.mutate.edits")),
      mutate_dirty_rta(r.counter("engine.mutate.dirty.rta_tasks")),
      mutate_dirty_bounds(r.counter("engine.mutate.dirty.bound_tasks")),
      mutate_dirty_edges(r.counter("engine.mutate.dirty.edges")),
      mutate_dirty_chain_sets(r.counter("engine.mutate.dirty.chain_sets")),
      mutate_dirty_reports(r.counter("engine.mutate.dirty.reports")),
      rta_refreshed_tasks(r.counter("engine.rta.refreshed_tasks")),
      survived_hits(r.counter("engine.cache.survived_hits")),
      retention_ppm(r.gauge("engine.mutate.retention_ppm")),
      rta_compute(r.histogram("engine.rta.compute")),
      disparity_compute(r.histogram("engine.disparity.compute")) {}

AnalysisEngine::AnalysisEngine(TaskGraph graph, EngineOptions opt)
    : graph_(std::move(graph)), opt_(opt) {
  graph_.validate();
  deps_.rebuild(graph_);
  task_epoch_.assign(graph_.num_tasks(), 0);
  chain_set_epoch_.assign(graph_.num_tasks(), 0);
  report_epoch_.assign(graph_.num_tasks(), 0);
}

AnalysisEngine::AnalysisEngine(TaskGraph graph, ResponseTimeMap rtm,
                               EngineOptions opt)
    : graph_(std::move(graph)), opt_(opt) {
  graph_.validate();
  CETA_EXPECTS(rtm.size() == graph_.num_tasks(),
               "AnalysisEngine: response-time map size mismatch");
  external_rtm_ = std::make_unique<ResponseTimeMap>(std::move(rtm));
  deps_.rebuild(graph_);
  task_epoch_.assign(graph_.num_tasks(), 0);
  chain_set_epoch_.assign(graph_.num_tasks(), 0);
  report_epoch_.assign(graph_.num_tasks(), 0);
}

AnalysisEngine::~AnalysisEngine() = default;

AnalysisEngine::AnalysisEngine(const AnalysisEngine& other, CloneTag)
    : graph_(other.graph_),
      opt_(other.opt_),
      deps_(other.deps_),
      commit_epoch_(other.commit_epoch_),
      task_epoch_(other.task_epoch_),
      chain_set_epoch_(other.chain_set_epoch_),
      report_epoch_(other.report_epoch_),
      buffer_edge_epoch_(other.buffer_edge_epoch_),
      removed_edge_epoch_(other.removed_edge_epoch_),
      hop_cache_(other.hop_cache_),
      chain_bound_cache_(other.chain_bound_cache_),
      report_cache_(other.report_cache_) {
  if (other.rta_) rta_ = std::make_unique<RtaResult>(*other.rta_);
  if (other.external_rtm_) {
    external_rtm_ = std::make_unique<ResponseTimeMap>(*other.external_rtm_);
  }
  rta_dirty_ = other.rta_dirty_;
  // Chain-set entries sit behind unique_ptr for reference stability; each
  // clone gets its own allocation so in-place refreshes never cross engines.
  chain_set_cache_.reserve(other.chain_set_cache_.size());
  for (const auto& [key, entry] : other.chain_set_cache_) {
    chain_set_cache_.emplace(key, std::make_unique<ChainSetEntry>(*entry));
  }
  // Deliberately not copied: metrics_/ins_ (fresh, zeroed registry — cache
  // statistics never bleed across engines), pool_ (lazy) and
  // commit_observer_ (observers are per-engine wiring).
}

std::unique_ptr<AnalysisEngine> AnalysisEngine::clone() const {
  obs::Span span("engine", "clone");
  const std::scoped_lock lock(rta_mutex_, hop_mutex_, chain_bound_mutex_,
                              chain_set_mutex_, report_mutex_);
  return std::unique_ptr<AnalysisEngine>(new AnalysisEngine(*this, CloneTag{}));
}

void AnalysisEngine::ensure_rta() const {
  const std::lock_guard<std::mutex> lock(rta_mutex_);
  if (external_rtm_) return;
  if (!rta_) {
    obs::Span span("engine", "rta");
    span.arg("tasks", static_cast<std::int64_t>(graph_.num_tasks()));
    const auto t0 = std::chrono::steady_clock::now();
    rta_ =
        std::make_unique<RtaResult>(analyze_response_times(graph_, opt_.rta));
    ins_.rta_compute.observe(elapsed_since(t0));
    ins_.rta_runs.add();
    rta_dirty_.clear();
    return;
  }
  if (!rta_dirty_.empty()) {
    // Scoped refresh: only the cohorts dirtied since the last query are
    // re-run (bit-identical to a full run, see reanalyze_response_times).
    obs::Span span("engine", "rta_refresh");
    span.arg("tasks", static_cast<std::int64_t>(rta_dirty_.size()));
    const auto t0 = std::chrono::steady_clock::now();
    reanalyze_response_times(graph_, opt_.rta, rta_dirty_, *rta_);
    ins_.rta_compute.observe(elapsed_since(t0));
    ins_.rta_refreshed_tasks.add(rta_dirty_.size());
    rta_dirty_.clear();
  }
}

const RtaResult& AnalysisEngine::rta() const {
  CETA_EXPECTS(!external_rtm_,
               "AnalysisEngine::rta: engine adopted an external "
               "response-time map and owns no RtaResult");
  ensure_rta();
  return *rta_;
}

const ResponseTimeMap& AnalysisEngine::response_times() const {
  if (external_rtm_) return *external_rtm_;
  ensure_rta();
  return rta_->response_time;
}

bool AnalysisEngine::schedulable() const {
  if (external_rtm_) {
    for (const Duration r : *external_rtm_) {
      if (r == Duration::max()) return false;
    }
    return true;
  }
  return rta().all_schedulable;
}

void AnalysisEngine::note_survivor(std::uint64_t stamp) const {
  if (commit_epoch_ != 0 && stamp < commit_epoch_) ins_.survived_hits.add();
}

std::uint64_t AnalysisEngine::hop_inputs_epoch(TaskId from, TaskId to) const {
  // Hops read task parameters and WCRTs but never channel depths, so only
  // removal epochs apply here — buffer resizes must not dirty hop entries
  // (§9 row "buffer": hop bounds survive).
  std::uint64_t e = std::max(task_epoch_[from], task_epoch_[to]);
  if (!removed_edge_epoch_.empty()) {
    const auto it = removed_edge_epoch_.find(
        static_cast<std::uint64_t>(from) * graph_.num_tasks() + to);
    if (it != removed_edge_epoch_.end()) e = std::max(e, it->second);
  }
  return e;
}

std::uint64_t AnalysisEngine::chain_inputs_epoch(const Path& chain) const {
  std::uint64_t e = 0;
  for (const TaskId t : chain) e = std::max(e, task_epoch_[t]);
  const auto edge_max = [&](
      const std::unordered_map<std::uint64_t, std::uint64_t>& epochs) {
    if (epochs.empty()) return;
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      const auto it = epochs.find(
          static_cast<std::uint64_t>(chain[i]) * graph_.num_tasks() +
          chain[i + 1]);
      if (it != epochs.end()) e = std::max(e, it->second);
    }
  };
  edge_max(buffer_edge_epoch_);  // Lemma 6 shift moves W(π)/B(π)
  edge_max(removed_edge_epoch_);
  return e;
}

Duration AnalysisEngine::hop(TaskId from, TaskId to,
                             HopBoundMethod method) const {
  return hop_impl(from, to, method, /*counted=*/true);
}

Duration AnalysisEngine::hop_impl(TaskId from, TaskId to,
                                  HopBoundMethod method, bool counted) const {
  // Edge ids are dense (< num_tasks each), so (from, to, method) packs
  // losslessly into one word.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(from) * graph_.num_tasks() + to) * 2 +
      static_cast<std::uint64_t>(method);
  obs::Span span("engine", "hop");
  bool stale = false;
  {
    const std::lock_guard<std::mutex> lock(hop_mutex_);
    const auto it = hop_cache_.find(key);
    if (it != hop_cache_.end()) {
      if (it->second.stamp >= hop_inputs_epoch(from, to)) {
        if (counted) ins_.hop_hits.add();
        note_survivor(it->second.stamp);
        span.arg("cache", "hit");
        return it->second.value;
      }
      ins_.hop_stale.add();
      stale = true;
    }
  }
  span.arg("cache", stale ? "stale" : "miss");
  const Duration theta =
      hop_bound(graph_, from, to, response_times(), method);
  const std::lock_guard<std::mutex> lock(hop_mutex_);
  if (counted) ins_.hop_misses.add();
  hop_cache_[key] = {theta, commit_epoch_};
  return theta;
}

BackwardBounds AnalysisEngine::chain_bounds(const Path& chain,
                                            HopBoundMethod method) const {
  return chain_bounds_impl(chain, method, /*counted=*/true);
}

BackwardBounds AnalysisEngine::chain_bounds_impl(const Path& chain,
                                                 HopBoundMethod method,
                                                 bool counted) const {
  ChainKey key{chain, method};
  obs::Span span("engine", "chain_bounds");
  bool stale = false;
  {
    const std::lock_guard<std::mutex> lock(chain_bound_mutex_);
    const auto it = chain_bound_cache_.find(key);
    if (it != chain_bound_cache_.end()) {
      if (it->second.stamp >= chain_inputs_epoch(chain)) {
        if (counted) ins_.chain_bound_hits.add();
        note_survivor(it->second.stamp);
        span.arg("cache", "hit");
        return it->second.value;
      }
      ins_.chain_bound_stale.add();
      stale = true;
    }
  }
  span.arg("cache", stale ? "stale" : "miss");
  // B(π) first: bcbt_bound validates the chain (path of the graph, finite
  // WCRTs), exactly like the free backward_bounds entry point.  W(π) is
  // then assembled from the memoized hops — bit-identical to wcbt_bound,
  // which sums the same θs left to right.  The nested hop reads are
  // uncounted plumbing of this one logical chain-bound lookup.
  BackwardBounds b;
  b.bcbt = bcbt_bound(graph_, chain, response_times());
  if (chain.size() == 1) {
    b.wcbt = Duration::zero();
  } else {
    Duration total = Duration::zero();
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      total += hop_impl(chain[i], chain[i + 1], method, /*counted=*/false);
    }
    b.wcbt = total + fifo_shift_upper(graph_, chain);
  }
  const std::lock_guard<std::mutex> lock(chain_bound_mutex_);
  if (counted) ins_.chain_bound_misses.add();
  chain_bound_cache_[std::move(key)] = {b, commit_epoch_};
  return b;
}

const std::vector<Path>& AnalysisEngine::chains(TaskId task,
                                                std::size_t path_cap) const {
  return chains_impl(task, path_cap, /*counted=*/true);
}

const std::vector<Path>& AnalysisEngine::chains_impl(TaskId task,
                                                     std::size_t path_cap,
                                                     bool counted) const {
  CETA_EXPECTS(task < graph_.num_tasks(), "AnalysisEngine::chains: bad id");
  const std::uint64_t key =
      static_cast<std::uint64_t>(task) ^ (static_cast<std::uint64_t>(path_cap)
                                          << 32);
  obs::Span span("engine", "chains");
  span.arg("task", static_cast<std::int64_t>(task));
  bool stale = false;
  {
    const std::lock_guard<std::mutex> lock(chain_set_mutex_);
    const auto it = chain_set_cache_.find(key);
    if (it != chain_set_cache_.end()) {
      if (it->second->stamp >= chain_set_epoch_[task]) {
        if (counted) ins_.chain_set_hits.add();
        note_survivor(it->second->stamp);
        span.arg("cache", "hit");
        return it->second->chains;
      }
      ins_.chain_set_stale.add();
      stale = true;
    }
  }
  span.arg("cache", stale ? "stale" : "miss");
  std::vector<Path> set = enumerate_source_chains(graph_, task, path_cap);
  const std::lock_guard<std::mutex> lock(chain_set_mutex_);
  const auto it = chain_set_cache_.find(key);
  if (it == chain_set_cache_.end()) {
    auto entry = std::make_unique<ChainSetEntry>();
    entry->chains = std::move(set);
    entry->stamp = commit_epoch_;
    const auto pos = chain_set_cache_.emplace(key, std::move(entry)).first;
    if (counted) ins_.chain_set_misses.add();
    return pos->second->chains;
  }
  if (it->second->stamp < chain_set_epoch_[task]) {
    // Refresh *in place*: references handed out before the mutation stay
    // valid and observe the updated enumeration (see chains()).
    it->second->chains = std::move(set);
    it->second->stamp = commit_epoch_;
    if (counted) ins_.chain_set_misses.add();
  } else {
    // A concurrent caller filled or refreshed the entry meanwhile; keep
    // the first result (both are identical).
    if (counted) ins_.chain_set_hits.add();
  }
  return it->second->chains;
}

std::vector<TaskId> AnalysisEngine::fusing_tasks() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < graph_.num_tasks(); ++id) {
    if (count_source_chains(graph_, id) >= 2) out.push_back(id);
  }
  return out;
}

BackwardBoundsFn AnalysisEngine::bounds_provider() const {
  return [this](const Path& chain, HopBoundMethod m) {
    return chain_bounds_impl(chain, m, /*counted=*/false);
  };
}

DisparityReport AnalysisEngine::disparity(TaskId task,
                                          const DisparityOptions& opt) const {
  CETA_EXPECTS(task < graph_.num_tasks(), "analyze_time_disparity: bad task id");
  opt.validate();
  const ReportKey key{task, opt.method, opt.hop_method, opt.path_cap,
                      opt.truncation, opt.keep_pairs,
                      opt.keep_pairs == KeepPairs::kTopK ? opt.top_k : 0,
                      opt.backend};
  obs::Span span("engine", "disparity");
  span.arg("task", static_cast<std::int64_t>(task));
  bool stale = false;
  {
    const std::lock_guard<std::mutex> lock(report_mutex_);
    const auto it = report_cache_.find(key);
    if (it != report_cache_.end()) {
      if (it->second.stamp >= report_epoch_[task]) {
        ins_.report_hits.add();
        note_survivor(it->second.stamp);
        span.arg("cache", "hit");
        return *it->second.value;
      }
      ins_.report_stale.add();
      stale = true;
    }
  }
  span.arg("cache", stale ? "stale" : "miss");
  const auto t0 = std::chrono::steady_clock::now();

  // Backend routing, mirroring analyze_time_disparity_backend: kDagDp runs
  // the DP (falling back to enumeration only when exactness demands it and
  // the instance fits under path_cap); kAuto checks the overflow-safe
  // chain count and degrades dense sinks to the DP instead of throwing
  // CapacityError.  The DP reads graph_ and response_times() only — both
  // inputs are covered by report_epoch_, so the cache/invalidation
  // machinery is untouched.
  bool use_dp = opt.backend == DisparityBackend::kDagDp;
  if (opt.backend == DisparityBackend::kAuto) {
    use_dp = count_source_chains_checked(graph_, task).exceeds(opt.path_cap);
  }
  std::shared_ptr<const DisparityReport> report;
  if (use_dp) {
    DisparityReport dp_report =
        analyze_time_disparity_dag_dp(graph_, task, response_times(), opt);
    if (opt.backend == DisparityBackend::kDagDp && !dp_report.exact &&
        !ChainCount{dp_report.chain_count, dp_report.chain_count_saturated}
             .exceeds(opt.path_cap)) {
      use_dp = false;  // exact enumeration fallback below
    } else {
      span.arg("backend", "dag_dp");
      report =
          std::make_shared<const DisparityReport>(std::move(dp_report));
    }
  }
  if (!use_dp) {
    // The pairwise kernel (disparity/pair_kernel.hpp) does the O(|P|²)
    // work, bit-identically to analyze_time_disparity; the engine supplies
    // its memoized chain set and full-chain bounds (so the chain-bound
    // cache keeps amortizing across hop methods and later latency queries)
    // and, when the pair count warrants it, its thread pool for the
    // intra-sink tiled reduction.  Never hand the pool over from inside
    // one of its own workers (disparity_all's per-sink jobs): with no work
    // stealing, tiles queued behind blocked workers would deadlock.  The
    // chain-set and chain-bound reads are uncounted plumbing of this one
    // logical report lookup (see EngineCacheStats).
    const std::vector<Path>& chain_list =
        chains_impl(task, opt.path_cap, /*counted=*/false);
    const std::size_t n = chain_list.size();
    std::vector<BackwardBounds> full;
    full.reserve(n);
    for (const Path& c : chain_list) {
      full.push_back(chain_bounds_impl(c, opt.hop_method, /*counted=*/false));
    }
    ThreadPool* tile_pool = nullptr;
    const std::size_t total_pairs = n < 2 ? 0 : n * (n - 1) / 2;
    if (opt_.num_threads != 1 && total_pairs >= 128 &&
        !ThreadPool::current_thread_in_pool()) {
      tile_pool = &pool();
    }
    report = std::make_shared<const DisparityReport>(
        pair_kernel_analyze(graph_, chain_list, response_times(), opt,
                            tile_pool, &full));
  }

  ins_.disparity_compute.observe(elapsed_since(t0));
  const std::lock_guard<std::mutex> lock(report_mutex_);
  const auto it = report_cache_.find(key);
  if (it == report_cache_.end() || it->second.stamp < report_epoch_[task]) {
    ins_.report_misses.add();
    auto& slot = report_cache_[key];
    slot.value = std::move(report);
    slot.stamp = commit_epoch_;
    return *slot.value;
  }
  // A concurrent caller inserted a fresh entry meanwhile; serve it.
  ins_.report_hits.add();
  return *it->second.value;
}

ThreadPool& AnalysisEngine::pool() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  if (!pool_) {
    const std::size_t n = opt_.num_threads == 0
                              ? ThreadPool::default_concurrency()
                              : opt_.num_threads;
    pool_ = std::make_unique<ThreadPool>(n);
  }
  return *pool_;
}

std::vector<DisparityReport> AnalysisEngine::disparity_all(
    const std::vector<TaskId>& tasks, const DisparityOptions& opt) const {
  obs::Span span("engine", "disparity_all");
  span.arg("tasks", static_cast<std::int64_t>(tasks.size()));
  std::vector<DisparityReport> out(tasks.size());
  const std::size_t threads = opt_.num_threads == 0
                                  ? ThreadPool::default_concurrency()
                                  : opt_.num_threads;
  if (threads <= 1 || tasks.size() < 2) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      out[i] = disparity(tasks[i], opt);
    }
    return out;
  }

  // Fan each task out as one unit; results land positionally so the output
  // is independent of completion order.  Worker exceptions (CapacityError
  // on a dense sink, ...) surface at get(), like in the serial loop.
  ThreadPool& p = pool();
  std::vector<std::future<DisparityReport>> results;
  results.reserve(tasks.size());
  for (const TaskId task : tasks) {
    results.push_back(
        p.submit([this, task, &opt] { return disparity(task, opt); }));
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    out[i] = results[i].get();
  }
  return out;
}

LatencyReport AnalysisEngine::latency(const Path& chain,
                                      HopBoundMethod method) const {
  const ResponseTimeMap& rtm = response_times();
  LatencyReport r;
  r.backward = chain_bounds(chain, method);
  r.max_data_age = r.backward.wcbt + rtm.at(chain.back());
  r.min_data_age = r.backward.bcbt + graph_.task(chain.back()).bcet;
  r.max_reaction_time = max_reaction_time_bound(graph_, chain, rtm);
  return r;
}

BufferDesign AnalysisEngine::optimize_buffer_pair(const Path& lambda,
                                                  const Path& nu,
                                                  HopBoundMethod method) const {
  // Route the Theorem 2 sub-chain bounds through the chain-bound cache;
  // bit-identical to design_buffer(graph_, lambda, nu, response_times(),
  // method) because chain_bounds ≡ backward_bounds.
  return design_buffer(graph_, lambda, nu, method, bounds_provider());
}

MultiBufferDesign AnalysisEngine::optimize_buffers(
    TaskId task, const DisparityOptions& opt) const {
  return design_buffers_for_task(graph_, task, response_times(), opt);
}

// --- Mutation API ----------------------------------------------------------

void AnalysisEngine::apply_one(const engine::Mutation& m) {
  using engine::MutationKind;
  switch (m.kind) {
    case MutationKind::kPeriod:
      graph_.task(m.task).period = m.period;
      break;
    case MutationKind::kWcetRange: {
      Task& t = graph_.task(m.task);
      t.bcet = m.bcet;
      t.wcet = m.wcet;
      break;
    }
    case MutationKind::kPriority:
      graph_.task(m.task).priority = m.priority;
      break;
    case MutationKind::kBuffer:
      graph_.set_buffer_size(m.from, m.to, m.channel.buffer_size);
      break;
    case MutationKind::kOffset:
      graph_.task(m.task).offset = m.offset;
      break;
    case MutationKind::kAddEdge:
      graph_.add_edge(m.from, m.to, m.channel);
      break;
    case MutationKind::kRemoveEdge:
      graph_.remove_edge(m.from, m.to);
      break;
    case MutationKind::kPolicy:
      graph_.set_policy(m.ecu, m.policy);
      break;
  }
}

void AnalysisEngine::validate_staged(
    const std::vector<engine::Mutation>& edits) const {
  using engine::MutationKind;
  // Final parameters of every edited task after the whole batch
  // (last-write-wins per field, like apply_one in order).
  std::unordered_map<TaskId, Task> finals;
  const auto final_task = [&](TaskId id) -> Task& {
    CETA_EXPECTS(id < graph_.num_tasks(),
                 "AnalysisEngine: mutation names unknown task id " +
                     std::to_string(id));
    return finals.try_emplace(id, graph_.task(id)).first->second;
  };
  for (const engine::Mutation& m : edits) {
    switch (m.kind) {
      case MutationKind::kPeriod:
        final_task(m.task).period = m.period;
        break;
      case MutationKind::kWcetRange: {
        Task& t = final_task(m.task);
        t.bcet = m.bcet;
        t.wcet = m.wcet;
        break;
      }
      case MutationKind::kPriority:
        final_task(m.task).priority = m.priority;
        break;
      case MutationKind::kOffset:
        final_task(m.task).offset = m.offset;
        break;
      case MutationKind::kBuffer:
        CETA_EXPECTS(m.from < graph_.num_tasks() &&
                         m.to < graph_.num_tasks() &&
                         graph_.has_edge(m.from, m.to),
                     "AnalysisEngine::set_buffer: no such edge");
        CETA_EXPECTS(m.channel.buffer_size >= 1,
                     "validate: channel buffer size must be >= 1");
        break;
      case MutationKind::kPolicy:
        // Non-structural; TaskGraph::set_policy cannot throw past this.
        CETA_EXPECTS(m.ecu != kNoEcu,
                     "AnalysisEngine::set_policy: sources occupy no ECU");
        break;
      case MutationKind::kAddEdge:
      case MutationKind::kRemoveEdge:
        CETA_EXPECTS(false, "validate_staged: structural edit in a "
                            "non-structural batch");
    }
  }
  for (const auto& [id, t] : finals) {
    validate_task(t);
    if (graph_.is_source(id)) {
      CETA_EXPECTS(t.wcet == Duration::zero() && t.bcet == Duration::zero(),
                   "validate: source task '" + t.name +
                       "' must have zero execution time");
    }
    if (t.ecu == kNoEcu) continue;
    // Uniqueness against the cohort's *final* priorities, so a batched
    // swap validates while a genuine collision is rejected.
    for (const TaskId other : deps_.ecu_cohort(id)) {
      if (other == id) continue;
      const auto it = finals.find(other);
      const int other_prio =
          it != finals.end() ? it->second.priority : graph_.task(other).priority;
      CETA_EXPECTS(other_prio != t.priority,
                   "validate: duplicate priority " +
                       std::to_string(t.priority) + " on ECU " +
                       std::to_string(t.ecu));
    }
  }
}

void AnalysisEngine::apply_mutations(
    const std::vector<engine::Mutation>& edits) {
  if (edits.empty()) return;
  obs::Span span("engine", "mutate");
  span.arg("edits", static_cast<std::int64_t>(edits.size()));

  if (external_rtm_) {
    for (const engine::Mutation& m : edits) {
      const bool sched_edit = m.kind == engine::MutationKind::kPeriod ||
                              m.kind == engine::MutationKind::kWcetRange ||
                              m.kind == engine::MutationKind::kPriority ||
                              m.kind == engine::MutationKind::kPolicy;
      CETA_EXPECTS(!sched_edit,
                   "AnalysisEngine: scheduling mutations are unavailable "
                   "when the engine adopted an external response-time map "
                   "(the engine cannot refresh it)");
    }
  }

  // Descendant closures of removed-edge heads, on the *pre-commit* graph —
  // removal destroys the very reachability that defines the affected set.
  std::vector<std::vector<TaskId>> removed_closures;
  for (const engine::Mutation& m : edits) {
    if (m.kind == engine::MutationKind::kRemoveEdge) {
      CETA_EXPECTS(m.to < graph_.num_tasks(),
                   "AnalysisEngine::remove_edge: unknown task id");
      removed_closures.push_back(descendants(graph_, m.to));
    }
  }

  // Strong guarantee, two ways.  Structural batches (edge edits) can make
  // the graph cyclic or strand a task, which only full validation of the
  // applied state can detect: apply against a snapshot and restore
  // wholesale on rejection (a snapshot, instead of per-edit undo records,
  // also restores adjacency-list *order*, which enumeration results
  // depend on).  Parameter-only batches are instead validated *before*
  // applying — every invariant they can break is local to the final value
  // of an edited task/edge (validate_staged) — after which apply_one
  // cannot throw, so the O(V) snapshot copy and O(V+E) revalidation are
  // skipped; they otherwise cost more than what a buffer-sweep point
  // re-analyzes.
  const bool structural = std::any_of(
      edits.begin(), edits.end(), [](const engine::Mutation& m) {
        return m.kind == engine::MutationKind::kAddEdge ||
               m.kind == engine::MutationKind::kRemoveEdge;
      });
  if (structural) {
    TaskGraph backup = graph_;
    try {
      for (const engine::Mutation& m : edits) apply_one(m);
      graph_.validate();
    } catch (...) {
      // Capture before restoring: the caller (and a cetad error reply)
      // must report the original validation failure, never anything the
      // restore could substitute for it.
      const std::exception_ptr original = std::current_exception();
      graph_ = std::move(backup);
      std::rethrow_exception(original);
    }
  } else {
    validate_staged(edits);
    for (const engine::Mutation& m : edits) apply_one(m);
  }

  const engine::InvalidationPlan plan =
      engine::plan_invalidation(graph_, deps_, edits, removed_closures);

  {
    // One epoch bump under every cache mutex: lookups either see the
    // pre-commit state or the fully bumped epochs, never a mix.
    const std::scoped_lock all(rta_mutex_, hop_mutex_, chain_bound_mutex_,
                               chain_set_mutex_, report_mutex_);
    ++commit_epoch_;
    if (!plan.rta_tasks.empty()) {
      rta_dirty_.insert(rta_dirty_.end(), plan.rta_tasks.begin(),
                        plan.rta_tasks.end());
      std::sort(rta_dirty_.begin(), rta_dirty_.end());
      rta_dirty_.erase(std::unique(rta_dirty_.begin(), rta_dirty_.end()),
                       rta_dirty_.end());
    }
    for (const TaskId t : plan.bound_tasks) task_epoch_[t] = commit_epoch_;
    if (!opt_.fault_skip_edge_invalidation) {
      for (const auto& [u, v] : plan.buffer_edges) {
        buffer_edge_epoch_[static_cast<std::uint64_t>(u) * graph_.num_tasks() +
                           v] = commit_epoch_;
      }
    }
    for (const auto& [u, v] : plan.removed_edges) {
      removed_edge_epoch_[static_cast<std::uint64_t>(u) * graph_.num_tasks() +
                          v] = commit_epoch_;
    }
    for (const TaskId t : plan.chain_set_tasks) {
      chain_set_epoch_[t] = commit_epoch_;
    }
    for (const TaskId t : plan.report_tasks) report_epoch_[t] = commit_epoch_;
  }

  ins_.mutate_commits.add();
  ins_.mutate_edits.add(edits.size());
  ins_.mutate_dirty_rta.add(plan.rta_tasks.size());
  ins_.mutate_dirty_bounds.add(plan.bound_tasks.size());
  ins_.mutate_dirty_edges.add(plan.buffer_edges.size() +
                              plan.removed_edges.size());
  ins_.mutate_dirty_chain_sets.add(plan.chain_set_tasks.size());
  ins_.mutate_dirty_reports.add(plan.report_tasks.size());
  span.arg("dirty_bounds", static_cast<std::int64_t>(plan.bound_tasks.size()));
  span.arg("dirty_reports",
           static_cast<std::int64_t>(plan.report_tasks.size()));

  // Last, outside every cache mutex: queries the observer issues (e.g. the
  // subscription layer recomputing dirtied sinks) see the committed state.
  if (commit_observer_) {
    commit_observer_(CommitInfo{commit_epoch_, plan});
  }
}

void AnalysisEngine::set_commit_observer(CommitObserver observer) {
  commit_observer_ = std::move(observer);
}

void AnalysisEngine::set_period(TaskId task, Duration period) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kPeriod;
  m.task = task;
  m.period = period;
  apply_mutations({m});
}

void AnalysisEngine::set_wcet_range(TaskId task, Duration bcet,
                                    Duration wcet) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kWcetRange;
  m.task = task;
  m.bcet = bcet;
  m.wcet = wcet;
  apply_mutations({m});
}

void AnalysisEngine::set_priority(TaskId task, int priority) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kPriority;
  m.task = task;
  m.priority = priority;
  apply_mutations({m});
}

void AnalysisEngine::set_policy(EcuId ecu, SchedPolicy policy) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kPolicy;
  m.ecu = ecu;
  m.policy = policy;
  apply_mutations({m});
}

void AnalysisEngine::set_buffer(TaskId from, TaskId to, int buffer_size) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kBuffer;
  m.from = from;
  m.to = to;
  m.channel.buffer_size = buffer_size;
  apply_mutations({m});
}

void AnalysisEngine::set_offset(TaskId task, Duration offset) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kOffset;
  m.task = task;
  m.offset = offset;
  apply_mutations({m});
}

void AnalysisEngine::add_edge(TaskId from, TaskId to, ChannelSpec spec) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kAddEdge;
  m.from = from;
  m.to = to;
  m.channel = spec;
  apply_mutations({m});
}

void AnalysisEngine::remove_edge(TaskId from, TaskId to) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kRemoveEdge;
  m.from = from;
  m.to = to;
  apply_mutations({m});
}

AnalysisEngine::Transaction& AnalysisEngine::Transaction::set_period(
    TaskId task, Duration period) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kPeriod;
  m.task = task;
  m.period = period;
  staged_.push_back(m);
  return *this;
}

AnalysisEngine::Transaction& AnalysisEngine::Transaction::set_wcet_range(
    TaskId task, Duration bcet, Duration wcet) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kWcetRange;
  m.task = task;
  m.bcet = bcet;
  m.wcet = wcet;
  staged_.push_back(m);
  return *this;
}

AnalysisEngine::Transaction& AnalysisEngine::Transaction::set_priority(
    TaskId task, int priority) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kPriority;
  m.task = task;
  m.priority = priority;
  staged_.push_back(m);
  return *this;
}

AnalysisEngine::Transaction& AnalysisEngine::Transaction::set_policy(
    EcuId ecu, SchedPolicy policy) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kPolicy;
  m.ecu = ecu;
  m.policy = policy;
  staged_.push_back(m);
  return *this;
}

AnalysisEngine::Transaction& AnalysisEngine::Transaction::set_buffer(
    TaskId from, TaskId to, int buffer_size) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kBuffer;
  m.from = from;
  m.to = to;
  m.channel.buffer_size = buffer_size;
  staged_.push_back(m);
  return *this;
}

AnalysisEngine::Transaction& AnalysisEngine::Transaction::set_offset(
    TaskId task, Duration offset) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kOffset;
  m.task = task;
  m.offset = offset;
  staged_.push_back(m);
  return *this;
}

AnalysisEngine::Transaction& AnalysisEngine::Transaction::add_edge(
    TaskId from, TaskId to, ChannelSpec spec) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kAddEdge;
  m.from = from;
  m.to = to;
  m.channel = spec;
  staged_.push_back(m);
  return *this;
}

AnalysisEngine::Transaction& AnalysisEngine::Transaction::remove_edge(
    TaskId from, TaskId to) {
  engine::Mutation m;
  m.kind = engine::MutationKind::kRemoveEdge;
  m.from = from;
  m.to = to;
  staged_.push_back(m);
  return *this;
}

void AnalysisEngine::Transaction::commit() {
  CETA_EXPECTS(!committed_, "Transaction::commit: already committed");
  committed_ = true;
  engine_.apply_mutations(staged_);
}

obs::MetricsSnapshot AnalysisEngine::metrics() const {
  // Refresh the derived retention gauge: of all lookups that could have
  // been lost to invalidation, the fraction served from surviving entries.
  const std::uint64_t survived =
      static_cast<std::uint64_t>(ins_.survived_hits.value());
  const std::uint64_t stale =
      static_cast<std::uint64_t>(ins_.hop_stale.value()) +
      static_cast<std::uint64_t>(ins_.chain_bound_stale.value()) +
      static_cast<std::uint64_t>(ins_.chain_set_stale.value()) +
      static_cast<std::uint64_t>(ins_.report_stale.value());
  const std::uint64_t denom = survived + stale;
  ins_.retention_ppm.set(
      denom == 0 ? 0
                 : static_cast<std::int64_t>(survived * 1'000'000 / denom));
  return metrics_.snapshot();
}

EngineCacheStats AnalysisEngine::cache_stats() const {
  // Shim: the registry counters are the source of truth; this struct view
  // remains for existing callers.
  EngineCacheStats s;
  s.rta_runs = static_cast<std::size_t>(ins_.rta_runs.value());
  s.hop_hits = static_cast<std::size_t>(ins_.hop_hits.value());
  s.hop_misses = static_cast<std::size_t>(ins_.hop_misses.value());
  s.chain_bound_hits = static_cast<std::size_t>(ins_.chain_bound_hits.value());
  s.chain_bound_misses =
      static_cast<std::size_t>(ins_.chain_bound_misses.value());
  s.chain_set_hits = static_cast<std::size_t>(ins_.chain_set_hits.value());
  s.chain_set_misses = static_cast<std::size_t>(ins_.chain_set_misses.value());
  s.report_hits = static_cast<std::size_t>(ins_.report_hits.value());
  s.report_misses = static_cast<std::size_t>(ins_.report_misses.value());
  s.hop_stale = static_cast<std::size_t>(ins_.hop_stale.value());
  s.chain_bound_stale =
      static_cast<std::size_t>(ins_.chain_bound_stale.value());
  s.chain_set_stale = static_cast<std::size_t>(ins_.chain_set_stale.value());
  s.report_stale = static_cast<std::size_t>(ins_.report_stale.value());
  s.mutation_commits = static_cast<std::size_t>(ins_.mutate_commits.value());
  s.mutation_edits = static_cast<std::size_t>(ins_.mutate_edits.value());
  s.rta_refreshed_tasks =
      static_cast<std::size_t>(ins_.rta_refreshed_tasks.value());
  s.survived_hits = static_cast<std::size_t>(ins_.survived_hits.value());
  return s;
}

}  // namespace ceta
