#include "engine/invalidation.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace ceta::engine {

namespace {

/// Union of descendant closures of `seeds` (each seed included), via one
/// multi-source forward walk.  O(V + E) worst case, proportional to the
/// reachable region otherwise.
void add_descendants(const TaskGraph& g, const std::vector<TaskId>& seeds,
                     std::vector<bool>& seen, std::vector<TaskId>& out) {
  std::vector<TaskId> stack;
  for (const TaskId s : seeds) {
    if (!seen[s]) {
      seen[s] = true;
      out.push_back(s);
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    const TaskId v = stack.back();
    stack.pop_back();
    for (const TaskId s : g.successors(v)) {
      if (!seen[s]) {
        seen[s] = true;
        out.push_back(s);
        stack.push_back(s);
      }
    }
  }
}

void sort_unique(std::vector<TaskId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

void sort_unique(std::vector<std::pair<TaskId, TaskId>>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

void DependencyIndex::rebuild(const TaskGraph& g) {
  group_of_.assign(g.num_tasks(), 0);
  groups_.clear();
  std::map<EcuId, std::size_t> group_of_ecu;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const EcuId ecu = g.task(id).ecu;
    if (ecu == kNoEcu) {
      // Sources compete with nobody: singleton cohort.
      group_of_[id] = groups_.size();
      groups_.push_back({id});
      continue;
    }
    const auto [it, inserted] = group_of_ecu.emplace(ecu, groups_.size());
    if (inserted) groups_.emplace_back();
    group_of_[id] = it->second;
    groups_[it->second].push_back(id);
  }
}

const std::vector<TaskId>& DependencyIndex::ecu_cohort(TaskId t) const {
  CETA_EXPECTS(t < group_of_.size(), "DependencyIndex: unknown task id");
  return groups_[group_of_[t]];
}

InvalidationPlan plan_invalidation(
    const TaskGraph& post, const DependencyIndex& deps,
    const std::vector<Mutation>& edits,
    const std::vector<std::vector<TaskId>>& removed_closures) {
  InvalidationPlan plan;

  // Seeds for the downstream (report) walk and — for period/structural
  // edits — the chain-set walk.  Collected first so each walk runs once.
  std::vector<TaskId> report_seeds;
  std::vector<TaskId> chain_set_seeds;
  // Tasks whose chain sets / reports are dirty but that may be unreachable
  // in `post` (heads of removed edges): their closures were computed on the
  // pre-commit graph by the caller.
  std::vector<TaskId> pre_closure_tasks;

  std::size_t removed_i = 0;
  for (const Mutation& m : edits) {
    switch (m.kind) {
      case MutationKind::kPeriod:
        // Period enters the RTA of the whole cohort (interference terms),
        // every hop bound touching a cohort member (θ = T + R refinements)
        // and — per the §9 contract — the chain enumerations through the
        // task (periods bound enumeration capacity downstream).
        for (const TaskId c : deps.ecu_cohort(m.task)) {
          plan.rta_tasks.push_back(c);
          plan.bound_tasks.push_back(c);
          report_seeds.push_back(c);
        }
        chain_set_seeds.push_back(m.task);
        break;
      case MutationKind::kWcetRange:
      case MutationKind::kPriority:
        // WCET/priority edits shift the cohort's blocking/interference
        // terms; chain *structure* is untouched, so enumerations survive.
        for (const TaskId c : deps.ecu_cohort(m.task)) {
          plan.rta_tasks.push_back(c);
          plan.bound_tasks.push_back(c);
          report_seeds.push_back(c);
        }
        break;
      case MutationKind::kBuffer:
        // Lemma 6: only the FIFO shift of chains traversing (from, to)
        // moves.  RTA, hop bounds and chain sets all survive.
        plan.buffer_edges.emplace_back(m.from, m.to);
        report_seeds.push_back(m.to);
        break;
      case MutationKind::kOffset:
        // Offsets enter no cached artifact (only the exact LET oracle and
        // the simulator, both uncached) — everything survives.
        break;
      case MutationKind::kAddEdge:
        // New data-flow paths appear downstream of the head; existing
        // chains, their bounds and the RTA are all still valid.
        chain_set_seeds.push_back(m.to);
        report_seeds.push_back(m.to);
        break;
      case MutationKind::kPolicy:
        // A dispatching-discipline flip re-derives the whole ECU's RTA
        // and the hop bounds touching its members (the Lemma 4 same-ECU
        // refinements are routed by the policy) — exactly a priority
        // edit's footprint.  Chain structure is untouched.
        for (TaskId id = 0; id < post.num_tasks(); ++id) {
          if (post.task(id).ecu != m.ecu) continue;
          for (const TaskId c : deps.ecu_cohort(id)) {
            plan.rta_tasks.push_back(c);
            plan.bound_tasks.push_back(c);
            report_seeds.push_back(c);
          }
          break;  // one member reaches the whole cohort
        }
        break;
      case MutationKind::kRemoveEdge: {
        // Chains through the dead edge vanish; anything keyed by a task
        // downstream of the old head is stale.  Reachability was destroyed
        // by the edit, so use the pre-commit closure supplied by the
        // caller.
        CETA_EXPECTS(removed_i < removed_closures.size(),
                     "plan_invalidation: missing pre-commit closure");
        const std::vector<TaskId>& closure = removed_closures[removed_i++];
        pre_closure_tasks.insert(pre_closure_tasks.end(), closure.begin(),
                                 closure.end());
        plan.removed_edges.emplace_back(m.from, m.to);
        break;
      }
    }
  }

  std::vector<bool> seen_reports(post.num_tasks(), false);
  for (const TaskId t : pre_closure_tasks) {
    if (!seen_reports[t]) {
      seen_reports[t] = true;
      plan.report_tasks.push_back(t);
    }
  }
  add_descendants(post, report_seeds, seen_reports, plan.report_tasks);

  std::vector<bool> seen_chain_sets(post.num_tasks(), false);
  for (const TaskId t : pre_closure_tasks) {
    if (!seen_chain_sets[t]) {
      seen_chain_sets[t] = true;
      plan.chain_set_tasks.push_back(t);
    }
  }
  add_descendants(post, chain_set_seeds, seen_chain_sets,
                  plan.chain_set_tasks);

  sort_unique(plan.rta_tasks);
  sort_unique(plan.bound_tasks);
  sort_unique(plan.buffer_edges);
  sort_unique(plan.removed_edges);
  sort_unique(plan.chain_set_tasks);
  sort_unique(plan.report_tasks);
  return plan;
}

}  // namespace ceta::engine
