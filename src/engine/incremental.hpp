// Incremental design-space loops on an AnalysisEngine.
//
// The optimization loops of disparity/ — §IV multi-chain buffer design,
// the buffer-memory Pareto sweep, parameter sensitivity, LET offset
// synthesis — all follow the same shape: edit the graph a little,
// re-analyze, compare, repeat.  Their free-function forms copy the graph
// and recompute everything per probe; the overloads here run the same
// loops through AnalysisEngine's mutation API instead, so each probe pays
// only for the caches its edit actually dirtied (DESIGN.md §9) — the RTA
// refresh is scoped to the edited ECU cohort, untouched chains keep their
// bounds, and so on.
//
// Results are bit-identical to the free functions (asserted by
// tests/test_engine_incremental.cpp): both run the same math, the engine
// only reuses what provably did not change.  Every function here restores
// the engine's graph to its pre-call state before returning (also on
// exceptions), mirroring the free functions' "input graph is not
// modified" contract.
//
// These live in engine/ (not disparity/) because they link against
// AnalysisEngine; disparity/ stays engine-free.

#pragma once

#include "disparity/multi_buffer.hpp"
#include "disparity/offset_opt.hpp"
#include "disparity/pareto.hpp"
#include "disparity/sensitivity.hpp"
#include "engine/analysis_engine.hpp"
#include "sched/audsley.hpp"

namespace ceta {

/// @brief Audsley-seeded priority assignment, committed through the
/// mutation API.  Runs assign_priorities_audsley on a scratch copy of
/// `engine`'s graph under the engine's own RtaOptions; when the
/// assignment is feasible, every changed priority is committed as one
/// Transaction (batch-validated, strong guarantee).  The natural starting
/// point of a design-space exploration (explore/explorer.hpp).
/// @param engine  Engine owning the graph.  Must own its RTA (priority
///   edits are rejected in external-rtm mode).
/// @return As assign_priorities_audsley: the engine's graph carries the
///   Audsley assignment iff `feasible`, and is untouched otherwise
///   (pinned against the free function by tests/test_explore.cpp).
/// Complexity: the OPA feasibility runs dominate; the commit costs one
/// invalidation walk over the edited cohorts.
AudsleyResult seed_priorities(AnalysisEngine& engine);

/// @brief §IV multi-chain buffer design for `task`, probing the buffered
/// configuration through `engine`'s mutation API.
/// @param engine  Engine owning the graph (restored before returning).
/// @param task    Fusion task to design for.
/// @param opt     Analyzer options, as for design_buffers_for_task.
/// @return Bit-identical to design_buffers_for_task(engine.graph(), task,
///   engine.response_times(), opt).
/// Complexity: two disparity analyses of `task`; the second reuses every
/// cache entry not dirtied by the FIFO resizes (chain sets, RTA, hops).
MultiBufferDesign design_buffers_for_task(AnalysisEngine& engine, TaskId task,
                                          const DisparityOptions& opt = {});

/// @brief Buffer-memory / disparity Pareto sweep of one chain pair,
/// resizing the Algorithm 1 channel in place via the mutation API.
/// @param engine     Engine owning the graph (restored before returning).
/// @param lambda,nu  The chain pair (both ending at the same task).
/// @param method     Hop-bound method for the Theorem 2 windows.
/// @return Bit-identical to buffer_pareto(engine.graph(), lambda, nu,
///   engine.response_times(), method).
/// Complexity: O(design size) Theorem 2 re-evaluations; sub-chain bounds
/// not traversing the resized edge are served from the chain-bound cache.
std::vector<ParetoPoint> buffer_pareto(
    AnalysisEngine& engine, const Path& lambda, const Path& nu,
    HopBoundMethod method = HopBoundMethod::kNonPreemptive);

/// @brief Period/WCET sensitivity of `task`'s disparity bound, probing
/// each perturbation through the mutation API.
/// @param engine  Engine owning the graph (restored before returning).
///   Must own its RTA (not external-rtm mode): each probe refreshes the
///   edited cohort.  The engine's RtaOptions govern the analysis —
///   `opt.rta` is ignored; construct the engine with the desired options.
/// @param task    Analyzed fusion task.
/// @param opt     Perturbation factors and analyzer options.
/// @return Bit-identical to disparity_sensitivity(engine.graph(), task,
///   opt) when engine.options().rta == opt.rta.
/// Complexity: O(ancestors) probes; each re-runs only the perturbed ECU
/// cohort's fixpoints plus the dirtied bounds, instead of the whole graph.
std::vector<SensitivityEntry> disparity_sensitivity(
    AnalysisEngine& engine, TaskId task, const SensitivityOptions& opt = {});

/// @brief LET offset synthesis for `task`, sweeping offsets through the
/// mutation API (offset edits invalidate nothing, §9 row "offset" — the
/// exact evaluator is the only consumer).
/// @param engine  Engine owning the graph; offsets are restored before
///   returning.  Apply the result with apply_offset_plan.
/// @param task    Analyzed task (same preconditions as exact_let_disparity).
/// @param opt     Sweep configuration.
/// @return Bit-identical to plan_source_offsets(engine.graph(), task, opt).
/// Complexity: evaluations × exact_let_disparity; graph copies are
/// eliminated versus the free function.
OffsetPlan plan_source_offsets(AnalysisEngine& engine, TaskId task,
                               const OffsetPlanOptions& opt = {});

}  // namespace ceta
