#include "engine/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "chain/backward_bounds.hpp"
#include "common/error.hpp"
#include "common/interval.hpp"
#include "disparity/exact.hpp"
#include "disparity/forkjoin.hpp"
#include "graph/algorithms.hpp"
#include "obs/tracer.hpp"

namespace ceta {

namespace {

Duration scaled(Duration d, double factor) {
  return Duration::ns(static_cast<std::int64_t>(
      std::llround(static_cast<double>(d.count()) * factor)));
}

}  // namespace

AudsleyResult seed_priorities(AnalysisEngine& engine) {
  obs::Span span("engine", "seed_priorities");
  TaskGraph scratch = engine.graph();
  const AudsleyResult result =
      assign_priorities_audsley(scratch, engine.options().rta);
  if (!result.feasible) return result;
  AnalysisEngine::Transaction txn(engine);
  for (TaskId t = 0; t < scratch.num_tasks(); ++t) {
    if (scratch.is_source(t)) continue;
    const int assigned = scratch.task(t).priority;
    if (assigned != engine.graph().task(t).priority) {
      txn.set_priority(t, assigned);
    }
  }
  txn.commit();
  return result;
}

MultiBufferDesign design_buffers_for_task(AnalysisEngine& engine, TaskId task,
                                          const DisparityOptions& opt) {
  obs::Span span("engine", "design_buffers_for_task");
  span.arg("task", static_cast<std::int64_t>(task));
  const TaskGraph& g = engine.graph();
  MultiBufferDesign design;
  const DisparityReport base = engine.disparity(task, opt);
  design.baseline_bound = base.worst_case;
  design.optimized_bound = base.worst_case;
  if (base.chains.size() < 2) return design;

  // Group chains by head channel; a group's window midpoint summary is
  // the mean of its members' (doubled) midpoints under Lemma 1 windows
  // anchored at r(J) = 0.  Mirrors disparity/multi_buffer.cpp, with the
  // bounds served from the engine's chain-bound cache.
  struct Group {
    TaskId from;
    TaskId to;
    double sum_m2 = 0.0;
    int members = 0;
  };
  std::map<std::pair<TaskId, TaskId>, Group> groups;
  for (const Path& chain : base.chains) {
    if (chain.size() < 2) continue;  // the task itself is a source
    const BackwardBounds b = engine.chain_bounds(chain, opt.hop_method);
    const Interval window(-b.wcbt, -b.bcbt);
    const auto key = std::make_pair(chain[0], chain[1]);
    Group& grp = groups
                     .try_emplace(key, Group{chain[0], chain[1], 0.0, 0})
                     .first->second;
    grp.sum_m2 += static_cast<double>(window.doubled_midpoint());
    ++grp.members;
  }
  if (groups.size() < 2) return design;

  double target_m2 = 0.0;
  bool first = true;
  for (const auto& [key, grp] : groups) {
    const double m2 = grp.sum_m2 / grp.members;
    if (first || m2 < target_m2) {
      target_m2 = m2;
      first = false;
    }
  }

  std::vector<ChannelBuffer> channels;
  for (const auto& [key, grp] : groups) {
    CETA_EXPECTS(g.channel(grp.from, grp.to).buffer_size == 1,
                 "design_buffers_for_task: head channel '" +
                     g.task(grp.from).name + "->" + g.task(grp.to).name +
                     "' already buffered");
    const double m2 = grp.sum_m2 / grp.members;
    const Duration t_head = g.task(grp.from).period;
    const auto k = static_cast<std::int64_t>(
        std::floor((m2 - target_m2) / (2.0 * static_cast<double>(t_head.count()))));
    if (k <= 0) continue;
    ChannelBuffer cb;
    cb.from = grp.from;
    cb.to = grp.to;
    cb.buffer_size = static_cast<int>(k) + 1;
    cb.shift = t_head * k;
    channels.push_back(cb);
  }
  if (channels.empty()) return design;

  // Probe the buffered configuration in place: one transaction resizes
  // every designed channel, invalidating only the chain bounds through
  // them (RTA, hops and the enumeration survive — §9 row "buffer").
  {
    AnalysisEngine::Transaction txn(engine);
    for (const ChannelBuffer& cb : channels) {
      txn.set_buffer(cb.from, cb.to, cb.buffer_size);
    }
    txn.commit();
  }
  Duration optimized;
  try {
    optimized = engine.disparity(task, opt).worst_case;
  } catch (...) {
    // Capture the analysis failure before reverting: the caller must see
    // *what* failed, and a throwing revert must not replace it silently.
    const std::exception_ptr original = std::current_exception();
    try {
      AnalysisEngine::Transaction revert(engine);
      for (const ChannelBuffer& cb : channels) {
        revert.set_buffer(cb.from, cb.to, 1);
      }
      revert.commit();
    } catch (...) {
      throw RollbackError(
          "design_buffers_for_task: buffer revert failed: " +
          exception_message(std::current_exception()) +
          " (original error: " + exception_message(original) + ")");
    }
    std::rethrow_exception(original);
  }
  {
    AnalysisEngine::Transaction revert(engine);
    for (const ChannelBuffer& cb : channels) {
      revert.set_buffer(cb.from, cb.to, 1);
    }
    revert.commit();
  }

  // Keep the design only if it actually helps.
  if (optimized >= design.baseline_bound) return design;
  design.channels = std::move(channels);
  design.optimized_bound = optimized;
  return design;
}

std::vector<ParetoPoint> buffer_pareto(AnalysisEngine& engine,
                                       const Path& lambda, const Path& nu,
                                       HopBoundMethod method) {
  obs::Span span("engine", "buffer_pareto");
  const BufferDesign design = engine.optimize_buffer_pair(lambda, nu, method);
  const Duration t_head = engine.graph().task(design.from).period;
  const BackwardBoundsFn bounds = [&engine](const Path& chain,
                                            HopBoundMethod m) {
    return engine.chain_bounds(chain, m);
  };

  std::vector<ParetoPoint> points;
  points.reserve(static_cast<std::size_t>(design.buffer_size));
  try {
    for (int n = 1; n <= design.buffer_size; ++n) {
      ParetoPoint p;
      p.buffer_size = n;
      p.shift = t_head * (n - 1);
      // Theorem 3 with a partial shift (still on the aligning side),
      // clamped by the Lemma 6-aware Theorem 2 re-analysis at this size.
      // Only the chain bounds over the resized edge recompute per step.
      const Duration analytic = design.baseline_bound - p.shift;
      if (n == 1) {
        p.bound = design.baseline_bound;
      } else {
        engine.set_buffer(design.from, design.to, n);
        const Duration rerun =
            sdiff_pair_bound(engine.graph(), lambda, nu, method, bounds)
                .bound;
        p.bound = std::min(analytic, rerun);
      }
      points.push_back(p);
    }
  } catch (...) {
    const std::exception_ptr original = std::current_exception();
    try {
      if (design.buffer_size > 1) engine.set_buffer(design.from, design.to, 1);
    } catch (...) {
      throw RollbackError(
          "buffer_pareto: buffer revert failed: " +
          exception_message(std::current_exception()) +
          " (original error: " + exception_message(original) + ")");
    }
    std::rethrow_exception(original);
  }
  if (design.buffer_size > 1) engine.set_buffer(design.from, design.to, 1);
  CETA_ASSERT(!points.empty(), "buffer_pareto: no points");
  CETA_ASSERT(points.back().bound <= design.optimized_bound,
              "buffer_pareto: final point must reach the Algorithm 1 bound");
  return points;
}

std::vector<SensitivityEntry> disparity_sensitivity(
    AnalysisEngine& engine, TaskId task, const SensitivityOptions& opt) {
  obs::Span span("engine", "disparity_sensitivity");
  span.arg("task", static_cast<std::int64_t>(task));
  CETA_EXPECTS(task < engine.graph().num_tasks(),
               "disparity_sensitivity: bad task id");
  CETA_EXPECTS(opt.period_factor > 0.0 && opt.wcet_factor >= 0.0,
               "disparity_sensitivity: factors must be positive");

  // Parameter edits never change the structure, so the ancestor closure
  // (and the chain sets behind the disparity queries) is stable.
  const std::vector<TaskId> closure = ancestors(engine.graph(), task);

  // Mirrors bound_of in disparity/sensitivity.cpp: schedulability of the
  // closure gates the disparity query.  The engine's scoped RTA refresh
  // replaces the free function's full re-analysis per probe.
  const auto bound_of = [&](Duration& out) {
    const RtaResult& rta = engine.rta();
    for (const TaskId anc : closure) {
      if (!rta.schedulable[anc]) return false;
    }
    out = engine.disparity(task, opt.disparity).worst_case;
    return true;
  };

  Duration baseline;
  CETA_EXPECTS(bound_of(baseline),
               "disparity_sensitivity: baseline system is unschedulable");

  std::vector<SensitivityEntry> entries;
  for (const TaskId anc : closure) {
    // Period perturbation.
    {
      const Task& t = engine.graph().task(anc);
      const Duration original = t.period;
      const Duration new_period = scaled(original, opt.period_factor);
      if (new_period > Duration::zero() && new_period > t.wcet &&
          t.offset < new_period && t.jitter < new_period) {
        engine.set_period(anc, new_period);
        SensitivityEntry e;
        e.task = anc;
        e.param = PerturbedParam::kPeriod;
        e.baseline = baseline;
        try {
          e.schedulable = bound_of(e.perturbed);
        } catch (...) {
          const std::exception_ptr failure = std::current_exception();
          try {
            engine.set_period(anc, original);
          } catch (...) {
            throw RollbackError(
                "disparity_sensitivity: period restore failed: " +
                exception_message(std::current_exception()) +
                " (original error: " + exception_message(failure) + ")");
          }
          std::rethrow_exception(failure);
        }
        if (!e.schedulable) e.perturbed = baseline;
        entries.push_back(e);
        engine.set_period(anc, original);
      }
    }
    // WCET perturbation (sources have zero execution time — skip).
    if (engine.graph().task(anc).wcet > Duration::zero()) {
      const Task& t = engine.graph().task(anc);
      const Duration old_bcet = t.bcet;
      const Duration old_wcet = t.wcet;
      const Duration new_wcet = scaled(old_wcet, opt.wcet_factor);
      engine.set_wcet_range(anc, std::min(old_bcet, new_wcet), new_wcet);
      SensitivityEntry e;
      e.task = anc;
      e.param = PerturbedParam::kWcet;
      e.baseline = baseline;
      try {
        e.schedulable = bound_of(e.perturbed);
      } catch (...) {
        const std::exception_ptr failure = std::current_exception();
        try {
          engine.set_wcet_range(anc, old_bcet, old_wcet);
        } catch (...) {
          throw RollbackError(
              "disparity_sensitivity: WCET restore failed: " +
              exception_message(std::current_exception()) +
              " (original error: " + exception_message(failure) + ")");
        }
        std::rethrow_exception(failure);
      }
      if (!e.schedulable) e.perturbed = baseline;
      entries.push_back(e);
      engine.set_wcet_range(anc, old_bcet, old_wcet);
    }
  }

  std::sort(entries.begin(), entries.end(),
            [](const SensitivityEntry& a, const SensitivityEntry& b) {
              if (a.schedulable != b.schedulable) return a.schedulable;
              const Duration da = a.delta() < Duration::zero() ? -a.delta()
                                                               : a.delta();
              const Duration db = b.delta() < Duration::zero() ? -b.delta()
                                                               : b.delta();
              return da > db;
            });
  return entries;
}

OffsetPlan plan_source_offsets(AnalysisEngine& engine, TaskId task,
                               const OffsetPlanOptions& opt) {
  obs::Span span("engine", "plan_source_offsets");
  span.arg("task", static_cast<std::int64_t>(task));
  const TaskGraph& g = engine.graph();
  CETA_EXPECTS(task < g.num_tasks(), "plan_source_offsets: bad task id");
  CETA_EXPECTS(opt.granularity > Duration::zero(),
               "plan_source_offsets: granularity must be positive");
  CETA_EXPECTS(opt.passes >= 1, "plan_source_offsets: need >= 1 pass");

  OffsetPlan plan;
  plan.baseline =
      exact_let_disparity(g, task, opt.path_cap, opt.max_releases)
          .worst_disparity;
  plan.optimized = plan.baseline;
  ++plan.evaluations;

  // The tunable coordinates, with their pre-call offsets for the restore.
  std::vector<TaskId> tunables;
  std::vector<Duration> originals;
  for (const TaskId id : ancestors(g, task)) {
    if (g.is_source(id) ||
        opt.tunables == OffsetTunables::kAllClosureTasks) {
      tunables.push_back(id);
      originals.push_back(g.task(id).offset);
    }
  }

  const auto restore = [&] {
    AnalysisEngine::Transaction txn(engine);
    for (std::size_t i = 0; i < tunables.size(); ++i) {
      txn.set_offset(tunables[i], originals[i]);
    }
    txn.commit();
  };

  try {
    // Offset edits invalidate nothing (§9 row "offset"): the sweep pays
    // exactly the exact-oracle evaluations, no graph copies, no cache
    // churn.
    for (int pass = 0;
         pass < opt.passes && plan.optimized > Duration::zero(); ++pass) {
      bool improved = false;
      for (const TaskId src : tunables) {
        const Duration start = g.task(src).offset;
        const Duration period = g.task(src).period;
        Duration best_offset = start;
        Duration best = plan.optimized;
        for (Duration cand = Duration::zero(); cand < period;
             cand += opt.granularity) {
          if (cand == start) continue;
          engine.set_offset(src, cand);
          const Duration d =
              exact_let_disparity(g, task, opt.path_cap, opt.max_releases)
                  .worst_disparity;
          ++plan.evaluations;
          if (opt.fault_fail_after_evaluations != 0 &&
              plan.evaluations >= opt.fault_fail_after_evaluations) {
            throw Error("plan_source_offsets: injected offset-sweep fault");
          }
          if (d < best) {
            best = d;
            best_offset = cand;
          }
        }
        engine.set_offset(src, best_offset);
        if (best < plan.optimized) {
          plan.optimized = best;
          improved = true;
        }
      }
      if (!improved) break;
    }
  } catch (...) {
    const std::exception_ptr original = std::current_exception();
    try {
      restore();
    } catch (...) {
      throw RollbackError(
          "plan_source_offsets: offset restore failed: " +
          exception_message(std::current_exception()) +
          " (original error: " + exception_message(original) + ")");
    }
    std::rethrow_exception(original);
  }

  for (const TaskId src : tunables) {
    plan.offsets.push_back(OffsetAssignment{src, g.task(src).offset});
  }
  restore();
  return plan;
}

}  // namespace ceta
