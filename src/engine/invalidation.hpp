// Dependency index + invalidation planning for the incremental engine.
//
// AnalysisEngine's caches memoize four artifact kinds — RTA entries, hop
// bounds θ(u,v), per-chain W/B bounds and enumerated chain sets / reports.
// When the graph is edited through the mutation API the engine must drop
// exactly the entries whose *inputs* changed and keep everything else;
// DESIGN.md §9 is the normative mutation × cache contract.  This header
// holds the pieces that compute the "what is affected" half of that
// contract as plain data, with no locking and no knowledge of the cache
// containers:
//
//  * DependencyIndex — the static dependency structure (task → same-ECU
//    cohort).  ECU placement is immutable under the mutation API, so the
//    index is built once per engine.
//  * Mutation — one primitive edit, the unit a Transaction batches.
//  * InvalidationPlan / plan_invalidation — maps a committed edit batch to
//    the dirty sets per cache layer, O(affected) in the sense that each
//    listed element is genuinely reachable from an edited task/edge
//    (cohorts + closure walks), never "the whole graph" by default.
//
// The engine turns a plan into epoch bumps (see analysis_engine.hpp): every
// cache entry is stamped with the commit epoch it was computed under, and
// per-task/per-edge epochs record the last commit that dirtied them; a
// lookup treats an entry as stale iff its stamp is older than the epoch of
// any of its inputs.  That keeps commits O(affected) — no cache scans.

#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "graph/task_graph.hpp"

namespace ceta::engine {

/// The kind of one primitive graph edit (the rows of the DESIGN.md §9
/// invalidation matrix).
enum class MutationKind {
  kPeriod,
  kWcetRange,
  kPriority,
  kBuffer,
  kOffset,
  kAddEdge,
  kRemoveEdge,
  kPolicy,
};

/// One primitive edit, as staged by AnalysisEngine::Transaction.  Only the
/// fields relevant to `kind` are meaningful.
struct Mutation {
  MutationKind kind = MutationKind::kPeriod;
  /// Target of a task-parameter edit (kPeriod/kWcetRange/kPriority/kOffset).
  TaskId task = 0;
  /// Endpoints of an edge edit (kBuffer/kAddEdge/kRemoveEdge).
  TaskId from = 0;
  TaskId to = 0;
  Duration period = Duration::zero();
  Duration bcet = Duration::zero();
  Duration wcet = Duration::zero();
  Duration offset = Duration::zero();
  int priority = 0;
  /// New FIFO depth (kBuffer) or the spec of an added edge (kAddEdge).
  ChannelSpec channel;
  /// Target ECU and new dispatching discipline (kPolicy).  A policy edit
  /// dirties exactly the ECU's cohort, like a priority edit.
  EcuId ecu = kNoEcu;
  SchedPolicy policy = SchedPolicy::kNonPreemptive;
};

/// Static dependency structure of a graph, built once per engine.
///
/// The only non-local dependency of the per-task NP-FP fixpoint is the
/// same-ECU competitor set, so the index is the ECU partition: editing the
/// WCET/period/priority of τ dirties exactly ecu_cohort(τ).  Tasks are
/// never re-mapped by the mutation API (and add_edge cannot turn a task
/// into a source, see AnalysisEngine::add_edge), so cohorts stay valid for
/// the engine's lifetime.
class DependencyIndex {
 public:
  /// Build the ECU partition of `g`.  Source tasks (no ECU) get singleton
  /// cohorts.  O(V log V).
  void rebuild(const TaskGraph& g);

  /// All tasks sharing `t`'s ECU, `t` included, in ascending id order; the
  /// exact set whose WCRTs can change when `t`'s scheduling parameters do.
  const std::vector<TaskId>& ecu_cohort(TaskId t) const;

 private:
  std::vector<std::size_t> group_of_;
  std::vector<std::vector<TaskId>> groups_;
};

/// Dirty sets of one committed edit batch, per cache layer.  Each vector is
/// deduplicated and sorted.
struct InvalidationPlan {
  /// Tasks whose RTA entry must be recomputed (scoped refresh).
  std::vector<TaskId> rta_tasks;
  /// Tasks whose *bound inputs* (WCRT or scheduling parameters) changed:
  /// hop bounds touching them and chain bounds containing them are stale.
  std::vector<TaskId> bound_tasks;
  /// Edges whose FIFO depth changed: chain bounds traversing them are
  /// stale (Lemma 6 shift), hop bounds and RTA are not.
  std::vector<std::pair<TaskId, TaskId>> buffer_edges;
  /// Edges removed from the graph: their hop entry and any chain bound
  /// traversing them must never be served again.
  std::vector<std::pair<TaskId, TaskId>> removed_edges;
  /// Tasks whose enumerated source→task chain set changed.
  std::vector<TaskId> chain_set_tasks;
  /// Tasks whose disparity report may have changed (union of everything
  /// above, propagated downstream).
  std::vector<TaskId> report_tasks;
};

/// Map a committed batch of edits to its per-layer dirty sets, following
/// the DESIGN.md §9 matrix.  `post` is the graph *after* the batch was
/// applied; `removed_closures` holds, for the i-th kRemoveEdge mutation in
/// `edits` (in order), the descendant closure of its head computed on the
/// *pre-commit* graph — removal destroys reachability, so the affected
/// tasks are only visible in the pre-state.  Cost: one multi-source
/// forward walk per edit class, O(V + E) worst case but proportional to
/// the reachable region in practice — never a cache scan.
InvalidationPlan plan_invalidation(
    const TaskGraph& post, const DependencyIndex& deps,
    const std::vector<Mutation>& edits,
    const std::vector<std::vector<TaskId>>& removed_closures);

}  // namespace ceta::engine
