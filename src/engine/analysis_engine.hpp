// AnalysisEngine — the session facade over the analysis stack.
//
// Every analysis of this library decomposes into the same shared
// subproblems: the NP-FP response-time fixpoint (one per graph), the
// enumerated source→task chain sets (one per analyzed task), the per-edge
// hop bounds θ(τ_i, τ_{i+1}) of Lemma 4, and the per-chain backward-time
// bounds W(π)/B(π) of Lemmas 4–5.  The free functions in sched/, chain/
// and disparity/ recompute them on every call, which is the right
// granularity for one-shot use but wasteful for sessions that analyze
// many sinks, methods or trials of the *same* graph (the Fig. 6 sweeps,
// the ablation benches, a what-if design loop).
//
// An AnalysisEngine owns a copy of the graph plus lazily computed,
// memoized artifacts of all four kinds, and re-exposes the analyses as
// methods that share them:
//
//   AnalysisEngine engine(graph);
//   if (!engine.rta().all_schedulable) ...          // fixpoint runs once
//   engine.disparity(sink);                          // Theorem 1/2 analyzer
//   engine.latency(chain);                           // data age / reaction
//   engine.optimize_buffers(sink);                   // §IV buffer design
//   engine.disparity_all(engine.fusing_tasks());     // parallel batch
//
// The graph is mutable *through the engine only*: the mutation API
// (set_period .. remove_edge, batched by Transaction) edits the owned copy
// and invalidates exactly the cache entries whose inputs changed, per the
// normative mutation × cache matrix in DESIGN.md §9.  Queries after a
// commit are bit-identical to a freshly constructed engine on the edited
// graph (the `incremental_matches_fresh` verify property).  Invalidation
// is epoch-based: each cache entry records the commit epoch it was
// computed under, each task/edge records the last commit that dirtied it,
// and a lookup recomputes iff the entry's stamp is older than any of its
// inputs' epochs — commits cost O(affected region), never a cache scan.
//
// Every method returns byte-identical results to the corresponding free
// function (asserted by tests/test_engine_cache.cpp); the free functions
// remain the single source of truth for the math, the engine only decides
// *when* to evaluate and remember it.  All query methods are const and
// safe to call from several threads; disparity_all fans independent tasks
// out over a fixed-size internal thread pool (thread_pool.hpp) and is
// verified bit-identical to the serial loop (tests/test_engine_parallel.cpp).
// Mutations are NOT safe against concurrent queries: a commit assumes
// exclusive access to the engine, like non-const methods of standard
// containers.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chain/backward_bounds.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/buffer_opt.hpp"
#include "disparity/multi_buffer.hpp"
#include "engine/invalidation.hpp"
#include "graph/paths.hpp"
#include "graph/task_graph.hpp"
#include "obs/metrics.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

class ThreadPool;

struct EngineOptions {
  /// Options for the engine-owned response-time analysis (ignored when an
  /// external ResponseTimeMap is supplied at construction).
  RtaOptions rta;
  /// Worker threads for disparity_all; 0 = ThreadPool::default_concurrency().
  std::size_t num_threads = 0;
  /// TEST ONLY — deliberately skip the edge-epoch bump of buffer-resize
  /// mutations, leaving chain-bound entries over the resized channel
  /// stale.  Exists so the verify campaign can prove the
  /// `incremental_matches_fresh` property catches a broken invalidation
  /// edge (`verify_bounds --inject-stale-cache`).  Never set in
  /// production code.
  bool fault_skip_edge_invalidation = false;
};

/// End-to-end latency bounds of one chain (chain/latency.hpp), bundled.
struct LatencyReport {
  /// W(π) / B(π) of the chain.
  BackwardBounds backward;
  /// Bounds on the data age of any output of the chain's tail task.
  Duration max_data_age;
  Duration min_data_age;
  /// Upper bound on the reaction time to an external stimulus.
  Duration max_reaction_time;
};

/// Cache effectiveness counters (diagnostics; see cache_stats()).
///
/// Superseded by AnalysisEngine::metrics(), which reports the same values
/// as named counters ("engine.hop.hits", ...) in a MetricsSnapshot
/// together with duration histograms.  cache_stats() remains as a thin
/// shim over the registry and will be marked [[deprecated]] once callers
/// migrate.
///
/// Counting contract: each *logical* lookup is counted once, at the layer
/// where it enters the engine.  disparity() counts one report lookup; the
/// chain-set and chain-bound reads it performs internally (to feed the
/// pair kernel's memoized truncated-pair table) are uncounted plumbing.
/// chain_bounds() counts one chain-bound lookup; its per-edge hop() reads
/// are uncounted.  Direct hop()/chains() calls count at their own layer.
/// Uncounted reads still warm the caches and are still staleness-checked.
struct EngineCacheStats {
  std::size_t rta_runs = 0;
  std::size_t hop_hits = 0;
  std::size_t hop_misses = 0;
  std::size_t chain_bound_hits = 0;
  std::size_t chain_bound_misses = 0;
  std::size_t chain_set_hits = 0;
  std::size_t chain_set_misses = 0;
  std::size_t report_hits = 0;
  std::size_t report_misses = 0;
  /// Entries found but discarded because a mutation dirtied their inputs
  /// (recomputed like misses; counted on uncounted internal reads too).
  std::size_t hop_stale = 0;
  std::size_t chain_bound_stale = 0;
  std::size_t chain_set_stale = 0;
  std::size_t report_stale = 0;
  /// Committed transactions / primitive edits within them.
  std::size_t mutation_commits = 0;
  std::size_t mutation_edits = 0;
  /// Tasks re-run through the scoped RTA refresh (cohorts of edits).
  std::size_t rta_refreshed_tasks = 0;
  /// Cache hits on entries computed before the latest commit — entries
  /// that *survived* invalidation.  retention = survived_hits /
  /// (survived_hits + stale evictions).
  std::size_t survived_hits = 0;
};

class AnalysisEngine {
 public:
  /// @brief Own a copy of `graph` (validated here) and run the RTA lazily
  /// on first use.
  /// @param graph  Analyzed graph; copied, later edits via the mutation
  ///   API only.
  /// @param opt    Engine configuration (RTA options, pool size).
  /// Complexity: O(V + E) validation; analyses run lazily.
  explicit AnalysisEngine(TaskGraph graph, EngineOptions opt = {});

  /// @brief Same, but adopt an externally computed WCRT map (alternative
  /// RTAs, Audsley feasibility runs, ...).
  /// @param rtm  One WCRT per task; the engine then owns no RtaResult —
  ///   rta() throws, response_times() returns this map, and scheduling
  ///   mutations (set_period/set_wcet_range/set_priority) are rejected
  ///   because the engine cannot refresh an adopted map.
  AnalysisEngine(TaskGraph graph, ResponseTimeMap rtm, EngineOptions opt = {});

  ~AnalysisEngine();
  AnalysisEngine(const AnalysisEngine&) = delete;
  AnalysisEngine& operator=(const AnalysisEngine&) = delete;

  /// @brief Deep, independent copy of this engine with every cache warm.
  ///
  /// The clone owns its own copy of the graph, the RTA state (engine-owned
  /// or adopted external map), the invalidation epochs and the hop /
  /// chain-bound / chain-set / report caches, so it answers every memoized
  /// query bit-identically to the original while mutations on either side
  /// never invalidate the other (tests/test_engine_clone.cpp).  Cached
  /// DisparityReports are immutable and shared by reference; everything
  /// else is copied.  Not cloned: the metrics registry (the clone starts
  /// with fresh, all-zero counters), the commit observer (the clone has
  /// none) and the thread pool (recreated lazily on first disparity_all).
  ///
  /// Thread safety: clone() is a const query and may run concurrently with
  /// other queries on this engine, but — like every query — not with
  /// commits.
  /// @return The cloned engine (never null).
  /// Complexity: O(graph + cached entries); no analysis is recomputed.
  std::unique_ptr<AnalysisEngine> clone() const;

  /// @brief The engine's copy of the analyzed graph (always reflects every
  /// committed mutation).
  const TaskGraph& graph() const { return graph_; }
  /// @brief The options the engine was constructed with.
  const EngineOptions& options() const { return opt_; }

  /// @brief The memoized RTA result (computed on first call, refreshed
  /// per-cohort after mutations).
  /// @throws PreconditionError if the engine adopted an external map — the
  ///   engine then has no RtaResult, only response times.
  /// Complexity: first call O(RTA fixpoints); afterwards O(dirty cohorts).
  const RtaResult& rta() const;

  /// @brief WCRT map used by every analysis of this engine (engine-owned
  /// RTA or the adopted external map).
  const ResponseTimeMap& response_times() const;

  /// @brief Convenience: all tasks schedulable?  (External-map mode: true
  /// iff every adopted WCRT is finite.)
  bool schedulable() const;

  /// @brief Memoized θ hop bound of Lemma 4 / the scheduling-agnostic
  /// variant for the edge (from, to).
  /// @param from,to  Edge endpoints (the hop is defined for any task pair
  ///   with finite WCRTs; edges are the common case).
  /// @param method   Lemma 4 (kNonPreemptive) or θ = T + R baseline.
  /// Complexity: O(1) amortized after the first evaluation.
  Duration hop(TaskId from, TaskId to,
               HopBoundMethod method = HopBoundMethod::kNonPreemptive) const;

  /// @brief Memoized W(π)/B(π) of a chain; equals backward_bounds(graph(),
  /// chain, response_times(), method), with W assembled from the memoized
  /// hops.
  /// @param chain   A path of graph() ending anywhere.
  /// @param method  Hop-bound method used for W(π).
  /// Complexity: O(|π|) per call (hash + staleness check), hop fixpoints
  /// amortized across chains sharing edges.
  BackwardBounds chain_bounds(
      const Path& chain,
      HopBoundMethod method = HopBoundMethod::kNonPreemptive) const;

  /// @brief Memoized enumerated source→task chain set P.
  /// @param task      Fusion task whose inbound chains are enumerated.
  /// @param path_cap  Enumeration capacity; throws CapacityError past it.
  /// @return Reference valid for the engine's lifetime; after a mutation
  ///   that dirties it, the *contents* are refreshed in place on the next
  ///   call, so long-held references observe the updated set rather than
  ///   dangling.
  /// Complexity: O(|P| · avg chain length) on first evaluation.
  const std::vector<Path>& chains(
      TaskId task, std::size_t path_cap = kDefaultPathCap) const;

  /// @brief All tasks fusing >= 2 source chains (the tasks with a
  /// nontrivial disparity) — the natural argument for disparity_all.
  /// Complexity: O(V · E) counting pass; uncached (cheap and
  /// structure-dependent).
  std::vector<TaskId> fusing_tasks() const;

  /// @brief Memoized task-level disparity analysis; byte-identical to
  /// analyze_time_disparity_backend(graph(), task, response_times(), opt):
  /// opt.backend picks the enumerating kernel or the DAG DP
  /// (disparity/dag_dp.hpp), with kAuto degrading sinks whose
  /// overflow-checked chain count exceeds opt.path_cap to the DP instead
  /// of throwing CapacityError.
  /// @param task  Fusion task to analyze.
  /// @param opt   Analysis options (validate()d here); every distinct
  ///   option tuple is its own cache entry (top_k normalized out unless
  ///   keep_pairs == kTopK).
  /// Complexity: O(|P|²) pair kernel or O(V + E·sources) DP on a miss,
  /// O(1) on a hit.
  DisparityReport disparity(TaskId task, const DisparityOptions& opt = {}) const;

  /// @brief Batch analysis of many tasks, fanned out over the engine's
  /// thread pool (options().num_threads workers; <= 1 runs inline).
  /// @return Positionally aligned with `tasks` and bit-identical to
  ///   calling disparity() serially for each.
  std::vector<DisparityReport> disparity_all(
      const std::vector<TaskId>& tasks, const DisparityOptions& opt = {}) const;

  /// @brief End-to-end latency bounds of one chain (must be a path of
  /// graph()).
  /// @param chain   The chain to bound.
  /// @param method  Hop-bound method for the backward bounds.
  /// Complexity: O(|π|) plus one memoized chain_bounds lookup.
  LatencyReport latency(
      const Path& chain,
      HopBoundMethod method = HopBoundMethod::kNonPreemptive) const;

  /// @brief Algorithm 1 on one chain pair (both ending at the same task),
  /// fed from the memoized chain-bound cache.
  /// @param lambda,nu  The chain pair; design targets nu's head channel.
  /// Complexity: O(|λ| + |ν|) beyond the memoized bounds.
  BufferDesign optimize_buffer_pair(
      const Path& lambda, const Path& nu,
      HopBoundMethod method = HopBoundMethod::kNonPreemptive) const;

  /// @brief Multi-chain buffer design for every chain fusing at `task`
  /// (§IV generalized); equals design_buffers_for_task on this graph.
  /// Complexity: dominated by two disparity analyses of `task`.
  MultiBufferDesign optimize_buffers(TaskId task,
                                     const DisparityOptions& opt = {}) const;

  // --- Mutation API -------------------------------------------------------
  //
  // Each setter edits the engine's graph copy and invalidates dependent
  // cache entries per the DESIGN.md §9 matrix; a single call is a
  // one-edit Transaction (validate, commit, invalidate).  To batch edits
  // — and pay one validation + one invalidation walk for all of them —
  // use Transaction.  After any commit, every query is bit-identical to a
  // fresh engine on the edited graph.  Mutations require exclusive access
  // (no concurrent queries) and are rejected wholesale (strong guarantee:
  // graph and caches unchanged) if the edited graph fails validate().

  /// @brief Set the period of `task` and commit.
  /// @throws PreconditionError in external-rtm mode (the adopted WCRT map
  ///   cannot be refreshed), or if the edited graph fails validate().
  /// Invalidates: RTA + hop/chain bounds of the ECU cohort, chain sets and
  /// reports downstream of `task` (§9 row "period").
  /// Complexity: O(affected region) at commit; queries pay lazily.
  void set_period(TaskId task, Duration period);

  /// @brief Set the execution-time range of `task` and commit.
  /// @param bcet,wcet  New range; bcet <= wcet enforced by validate().
  /// @throws PreconditionError in external-rtm mode or on invalid edits.
  /// Invalidates: RTA + bounds of the ECU cohort, reports downstream (§9
  /// row "WCET"); chain sets survive.
  void set_wcet_range(TaskId task, Duration bcet, Duration wcet);

  /// @brief Set the fixed priority of `task` and commit.
  /// @throws PreconditionError in external-rtm mode, or if the edit
  ///   collides with another priority on the ECU (validate()).
  /// Invalidates: like set_wcet_range (§9 row "priority").
  void set_priority(TaskId task, int priority);

  /// @brief Set the dispatching discipline of `ecu` and commit.
  /// @param ecu  Any ECU id except kNoEcu (sources never contend); an ECU
  ///   no task currently uses is accepted and recorded.
  /// @param policy  New per-ECU discipline (TaskGraph::set_policy).
  /// @throws PreconditionError in external-rtm mode (the adopted WCRT map
  ///   was computed under the old discipline), or on kNoEcu.
  /// Invalidates: RTA + hop/chain bounds of the ECU's cohort and reports
  /// downstream — exactly a priority edit's footprint (§9 row "policy");
  /// other ECUs' entries and all chain sets survive.
  void set_policy(EcuId ecu, SchedPolicy policy);

  /// @brief Resize the FIFO of channel (from, to) and commit.
  /// @param buffer_size  New depth (>= 1; 1 is the overwrite register).
  /// Invalidates: chain bounds traversing the edge (Lemma 6 shift) and
  /// reports downstream of `to` — RTA, hop bounds and chain sets all
  /// survive (§9 row "buffer").
  void set_buffer(TaskId from, TaskId to, int buffer_size);

  /// @brief Set the release offset of `task` and commit.
  /// Invalidates: nothing — offsets enter no cached artifact (only the
  /// exact LET oracle and the simulator, both uncached; §9 row "offset").
  void set_offset(TaskId task, Duration offset);

  /// @brief Add the edge (from, to) and commit.
  /// @param spec  Channel configuration of the new edge.
  /// @throws PreconditionError on duplicate edges, cycles, or if `to` was
  ///   a source (sources carry no ECU; giving them an inbound edge would
  ///   reclassify them, which validate() rejects).
  /// Invalidates: chain sets and reports downstream of `to`; RTA, hop and
  /// existing chain bounds survive (§9 row "add edge").
  void add_edge(TaskId from, TaskId to, ChannelSpec spec = {});

  /// @brief Remove the edge (from, to) and commit.
  /// @throws PreconditionError if absent, or if removal strands `to` as a
  ///   source with non-source parameters (validate()).
  /// Invalidates: chain sets and reports downstream of `to` *on the
  /// pre-commit graph* (removal destroys reachability), plus the edge's
  /// hop entry and chain bounds traversing it (§9 row "remove edge").
  void remove_edge(TaskId from, TaskId to);

  /// A batch of mutations applied as one commit: stage edits with the
  /// fluent setters, then commit().  The batch validates once and runs one
  /// invalidation walk over the union of the edits — the cheap way to
  /// express design-space moves that are only valid jointly (swapping two
  /// priorities, rewiring an edge).  Destroying an uncommitted Transaction
  /// discards its staged edits.  commit() provides the strong guarantee:
  /// if the edited graph fails validate(), the graph and all caches are
  /// left untouched and the error is rethrown.
  ///
  ///   AnalysisEngine::Transaction txn(engine);
  ///   txn.set_priority(a, engine.graph().task(b).priority)
  ///      .set_priority(b, engine.graph().task(a).priority);
  ///   txn.commit();
  class Transaction {
   public:
    /// @brief Start an empty batch against `engine`.
    explicit Transaction(AnalysisEngine& engine) : engine_(engine) {}
    Transaction(const Transaction&) = delete;
    Transaction& operator=(const Transaction&) = delete;

    /// Staged counterparts of the engine setters; arguments as there.
    Transaction& set_period(TaskId task, Duration period);
    Transaction& set_wcet_range(TaskId task, Duration bcet, Duration wcet);
    Transaction& set_priority(TaskId task, int priority);
    Transaction& set_policy(EcuId ecu, SchedPolicy policy);
    Transaction& set_buffer(TaskId from, TaskId to, int buffer_size);
    Transaction& set_offset(TaskId task, Duration offset);
    Transaction& add_edge(TaskId from, TaskId to, ChannelSpec spec = {});
    Transaction& remove_edge(TaskId from, TaskId to);

    /// @brief Number of staged edits.
    std::size_t size() const { return staged_.size(); }

    /// @brief Apply all staged edits as one commit (empty batches are
    /// no-ops).  The Transaction is spent afterwards.
    /// @throws PreconditionError if the batch is rejected (graph and
    ///   caches unchanged), or if already committed.
    /// Complexity: O(edits + affected region) — one validate(), one
    /// invalidation plan, one epoch bump.
    void commit();

   private:
    AnalysisEngine& engine_;
    std::vector<engine::Mutation> staged_;
    bool committed_ = false;
  };

  /// What a commit observer learns about one committed mutation batch:
  /// the commit epoch (monotonically increasing, one per commit) and the
  /// invalidation plan the engine derived from the batch.  `plan` is
  /// borrowed — valid only for the duration of the callback.
  /// plan.report_tasks is the exact set of tasks whose disparity report
  /// may have changed; this is what the cetad subscription layer threads
  /// through to its notifier (only dirtied sinks re-notify).
  struct CommitInfo {
    std::uint64_t epoch = 0;
    const engine::InvalidationPlan& plan;
  };
  using CommitObserver = std::function<void(const CommitInfo&)>;

  /// @brief Register `observer` to run after every committed mutation
  /// batch (replacing any previous observer; nullptr unregisters).  The
  /// observer runs on the committing thread, *after* the epoch bumps are
  /// published, so queries it issues observe the post-commit state.  Like
  /// mutations themselves it must not race concurrent commits.
  void set_commit_observer(CommitObserver observer);

  /// @brief Snapshot of the engine's private metrics registry: the cache
  /// counters ("engine.rta.runs", "engine.hop.hits", ...), the mutation /
  /// invalidation counters ("engine.mutate.commits",
  /// "engine.hop.stale", ...), the cache-retention gauge
  /// ("engine.mutate.retention_ppm", parts-per-million of post-commit
  /// lookups served from surviving entries) plus duration histograms for
  /// RTA and disparity computation.  Point-in-time consistent per
  /// instrument.
  obs::MetricsSnapshot metrics() const;

  /// @brief The engine's private registry (stable for the engine's
  /// lifetime); exposed so callers can attach their own instruments to the
  /// same snapshot.
  obs::MetricsRegistry& metrics_registry() const { return metrics_; }

  /// @brief Snapshot of the cache counters.  Thin shim over metrics():
  /// each field is the value of the corresponding registry counter
  /// (asserted byte-identical in tests/test_engine_cache.cpp).  Prefer
  /// metrics().  See EngineCacheStats for the once-per-logical-lookup
  /// counting contract.
  EngineCacheStats cache_stats() const;

 private:
  /// Tag selecting the private deep-copy constructor behind clone().
  struct CloneTag {};
  /// Deep copy of `other`; the calling clone() holds every cache mutex of
  /// `other` for the duration.
  AnalysisEngine(const AnalysisEngine& other, CloneTag);

  struct ChainKey {
    Path chain;
    HopBoundMethod method;
    bool operator==(const ChainKey&) const = default;
  };
  struct ChainKeyHash {
    std::size_t operator()(const ChainKey& k) const;
  };
  struct ReportKey {
    TaskId task = 0;
    DisparityMethod method = DisparityMethod::kForkJoin;
    HopBoundMethod hop_method = HopBoundMethod::kNonPreemptive;
    std::size_t path_cap = 0;
    JointTruncation truncation = JointTruncation::kAuto;
    KeepPairs keep_pairs = KeepPairs::kAll;
    /// Normalized to 0 unless keep_pairs == kTopK (top_k is inert then, and
    /// must not split cache entries).
    std::size_t top_k = 0;
    /// Backend selector: distinct backends produce structurally different
    /// reports (chains/pairs vs source_pairs), so they must not share an
    /// entry even when their worst_case agrees.
    DisparityBackend backend = DisparityBackend::kAuto;
    bool operator==(const ReportKey&) const = default;
  };
  struct ReportKeyHash {
    std::size_t operator()(const ReportKey& k) const;
  };

  /// A cached value plus the commit epoch it was computed under; stale iff
  /// the stamp is older than any input's epoch.
  template <typename T>
  struct Stamped {
    T value;
    std::uint64_t stamp = 0;
  };
  struct ChainSetEntry {
    std::vector<Path> chains;
    std::uint64_t stamp = 0;
  };

  /// Cache instruments, resolved once against metrics_ (counter() takes
  /// the registry mutex; the references are wait-free afterwards).
  struct Instruments {
    explicit Instruments(obs::MetricsRegistry& r);
    obs::Counter& rta_runs;
    obs::Counter& hop_hits;
    obs::Counter& hop_misses;
    obs::Counter& chain_bound_hits;
    obs::Counter& chain_bound_misses;
    obs::Counter& chain_set_hits;
    obs::Counter& chain_set_misses;
    obs::Counter& report_hits;
    obs::Counter& report_misses;
    obs::Counter& hop_stale;
    obs::Counter& chain_bound_stale;
    obs::Counter& chain_set_stale;
    obs::Counter& report_stale;
    obs::Counter& mutate_commits;
    obs::Counter& mutate_edits;
    obs::Counter& mutate_dirty_rta;
    obs::Counter& mutate_dirty_bounds;
    obs::Counter& mutate_dirty_edges;
    obs::Counter& mutate_dirty_chain_sets;
    obs::Counter& mutate_dirty_reports;
    obs::Counter& rta_refreshed_tasks;
    obs::Counter& survived_hits;
    obs::Gauge& retention_ppm;
    obs::DurationHistogram& rta_compute;
    obs::DurationHistogram& disparity_compute;
  };

  void ensure_rta() const;
  BackwardBoundsFn bounds_provider() const;
  ThreadPool& pool() const;

  // Counting-contract impls: `counted` selects whether this lookup bumps
  // the layer's hit/miss counters (false = internal plumbing on behalf of
  // an outer query).  Staleness checks and cache warming always happen.
  Duration hop_impl(TaskId from, TaskId to, HopBoundMethod method,
                    bool counted) const;
  BackwardBounds chain_bounds_impl(const Path& chain, HopBoundMethod method,
                                   bool counted) const;
  const std::vector<Path>& chains_impl(TaskId task, std::size_t path_cap,
                                       bool counted) const;

  /// Record a hit on an entry that predates the latest commit (survived
  /// invalidation) for the retention ratio.
  void note_survivor(std::uint64_t stamp) const;

  /// Epoch of the newest input of a hop (task epochs of both endpoints,
  /// plus the removal epoch of the edge — buffer-resize epochs do NOT
  /// apply, hops never read channel depths).  Caller holds hop_mutex_.
  std::uint64_t hop_inputs_epoch(TaskId from, TaskId to) const;
  /// Epoch of the newest input of a chain (member task epochs + buffer and
  /// removal epochs of traversed edges).  Caller holds chain_bound_mutex_.
  std::uint64_t chain_inputs_epoch(const Path& chain) const;

  /// Apply one staged batch, then plan and commit the invalidation
  /// (single writer; takes every cache mutex).  Non-structural batches
  /// (no edge edits) are validated up front by validate_staged so applying
  /// cannot fail; structural batches fall back to snapshot-and-rollback.
  void apply_mutations(const std::vector<engine::Mutation>& edits);
  void apply_one(const engine::Mutation& m);
  /// Check a non-structural batch against the graph state it would
  /// produce — per-task parameter invariants on final values (so batched
  /// edits to one task, e.g. period + offset, are judged jointly),
  /// priority uniqueness against the ECU cohort's final priorities (so
  /// priority *swaps* batch-validate), buffer edits against existing
  /// edges.  Throws PreconditionError without touching any state; on
  /// success every apply_one of the batch is infallible, which is what
  /// lets apply_mutations skip the whole-graph snapshot + revalidation
  /// that otherwise dominate a single-edit commit.
  void validate_staged(const std::vector<engine::Mutation>& edits) const;

  TaskGraph graph_;
  EngineOptions opt_;

  // Per-engine registry: cache statistics never bleed across engines.
  mutable obs::MetricsRegistry metrics_;
  mutable Instruments ins_{metrics_};

  mutable std::mutex rta_mutex_;
  mutable std::unique_ptr<RtaResult> rta_;          // engine-owned mode
  mutable std::unique_ptr<ResponseTimeMap> external_rtm_;  // external mode
  /// Tasks whose RTA entry awaits a scoped refresh (drained by
  /// ensure_rta; sorted, unique).  Guarded by rta_mutex_.
  mutable std::vector<TaskId> rta_dirty_;

  // --- invalidation state --------------------------------------------------
  // Epochs are written during commits (all cache mutexes held) and read
  // under the respective cache mutex, which establishes the necessary
  // happens-before without extra synchronization.
  engine::DependencyIndex deps_;
  std::uint64_t commit_epoch_ = 0;
  std::vector<std::uint64_t> task_epoch_;       // bound inputs changed
  std::vector<std::uint64_t> chain_set_epoch_;  // enumeration changed
  std::vector<std::uint64_t> report_epoch_;     // report inputs changed
  /// Sparse: only edges ever dirtied appear, so the common no-mutation
  /// path pays nothing.  Key: from * V + to.  Split by mutation kind so a
  /// buffer resize (which moves W(π)/B(π) but not θ) dirties chain bounds
  /// without dirtying the edge's hop entry, while a removal dirties both.
  std::unordered_map<std::uint64_t, std::uint64_t> buffer_edge_epoch_;
  std::unordered_map<std::uint64_t, std::uint64_t> removed_edge_epoch_;

  mutable std::mutex hop_mutex_;
  mutable std::unordered_map<std::uint64_t, Stamped<Duration>> hop_cache_;

  mutable std::mutex chain_bound_mutex_;
  mutable std::unordered_map<ChainKey, Stamped<BackwardBounds>, ChainKeyHash>
      chain_bound_cache_;

  mutable std::mutex chain_set_mutex_;
  // Keyed by (task, cap); unique_ptr keeps returned references stable
  // across rehashes, and stale sets are refreshed *in place* so they stay
  // stable across mutations too.
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<ChainSetEntry>>
      chain_set_cache_;

  mutable std::mutex report_mutex_;
  mutable std::unordered_map<ReportKey,
                             Stamped<std::shared_ptr<const DisparityReport>>,
                             ReportKeyHash>
      report_cache_;

  mutable std::mutex pool_mutex_;
  mutable std::unique_ptr<ThreadPool> pool_;

  /// Post-commit hook (subscription layers); runs outside every cache
  /// mutex on the committing thread.
  CommitObserver commit_observer_;
};

}  // namespace ceta
