// AnalysisEngine — the session facade over the analysis stack.
//
// Every analysis of this library decomposes into the same shared
// subproblems: the NP-FP response-time fixpoint (one per graph), the
// enumerated source→task chain sets (one per analyzed task), the per-edge
// hop bounds θ(τ_i, τ_{i+1}) of Lemma 4, and the per-chain backward-time
// bounds W(π)/B(π) of Lemmas 4–5.  The free functions in sched/, chain/
// and disparity/ recompute them on every call, which is the right
// granularity for one-shot use but wasteful for sessions that analyze
// many sinks, methods or trials of the *same* graph (the Fig. 6 sweeps,
// the ablation benches, a what-if design loop).
//
// An AnalysisEngine owns an immutable copy of the graph plus lazily
// computed, memoized artifacts of all four kinds, and re-exposes the
// analyses as methods that share them:
//
//   AnalysisEngine engine(graph);
//   if (!engine.rta().all_schedulable) ...          // fixpoint runs once
//   engine.disparity(sink);                          // Theorem 1/2 analyzer
//   engine.latency(chain);                           // data age / reaction
//   engine.optimize_buffers(sink);                   // §IV buffer design
//   engine.disparity_all(engine.fusing_tasks());     // parallel batch
//
// Every method returns byte-identical results to the corresponding free
// function (asserted by tests/test_engine_cache.cpp); the free functions
// remain the single source of truth for the math, the engine only decides
// *when* to evaluate and remember it.  All methods are const and safe to
// call from several threads; disparity_all fans independent tasks out over
// a fixed-size internal thread pool (thread_pool.hpp) and is verified
// bit-identical to the serial loop (tests/test_engine_parallel.cpp).

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "chain/backward_bounds.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/buffer_opt.hpp"
#include "disparity/multi_buffer.hpp"
#include "graph/paths.hpp"
#include "graph/task_graph.hpp"
#include "obs/metrics.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

class ThreadPool;

struct EngineOptions {
  /// Options for the engine-owned response-time analysis (ignored when an
  /// external ResponseTimeMap is supplied at construction).
  RtaOptions rta;
  /// Worker threads for disparity_all; 0 = ThreadPool::default_concurrency().
  std::size_t num_threads = 0;
};

/// End-to-end latency bounds of one chain (chain/latency.hpp), bundled.
struct LatencyReport {
  /// W(π) / B(π) of the chain.
  BackwardBounds backward;
  /// Bounds on the data age of any output of the chain's tail task.
  Duration max_data_age;
  Duration min_data_age;
  /// Upper bound on the reaction time to an external stimulus.
  Duration max_reaction_time;
};

/// Cache effectiveness counters (diagnostics; see cache_stats()).
///
/// Superseded by AnalysisEngine::metrics(), which reports the same values
/// as named counters ("engine.hop.hits", ...) in a MetricsSnapshot
/// together with duration histograms.  cache_stats() remains as a thin
/// shim over the registry and will be marked [[deprecated]] once callers
/// migrate.
struct EngineCacheStats {
  std::size_t rta_runs = 0;
  std::size_t hop_hits = 0;
  std::size_t hop_misses = 0;
  std::size_t chain_bound_hits = 0;
  std::size_t chain_bound_misses = 0;
  std::size_t chain_set_hits = 0;
  std::size_t chain_set_misses = 0;
  std::size_t report_hits = 0;
  std::size_t report_misses = 0;
};

class AnalysisEngine {
 public:
  /// Own a copy of `graph` (validated here; the engine's results can never
  /// be invalidated by later caller-side mutation) and run the RTA lazily
  /// on first use.
  explicit AnalysisEngine(TaskGraph graph, EngineOptions opt = {});

  /// Same, but adopt an externally computed WCRT map (alternative RTAs,
  /// Audsley feasibility runs, ...).  rta() is unavailable in this mode;
  /// response_times() returns the adopted map.
  AnalysisEngine(TaskGraph graph, ResponseTimeMap rtm, EngineOptions opt = {});

  ~AnalysisEngine();
  AnalysisEngine(const AnalysisEngine&) = delete;
  AnalysisEngine& operator=(const AnalysisEngine&) = delete;

  /// The engine's immutable copy of the analyzed graph.
  const TaskGraph& graph() const { return graph_; }
  const EngineOptions& options() const { return opt_; }

  /// The memoized RTA result (computed on first call).  Throws
  /// PreconditionError if the engine adopted an external map — the engine
  /// then has no RtaResult, only response times.
  const RtaResult& rta() const;

  /// WCRT map used by every analysis of this engine (engine-owned RTA or
  /// the adopted external map).
  const ResponseTimeMap& response_times() const;

  /// Convenience: all tasks schedulable?  (External-map mode: true iff
  /// every adopted WCRT is finite.)
  bool schedulable() const;

  /// Memoized θ hop bound of Lemma 4 / the scheduling-agnostic variant for
  /// the edge (from, to).
  Duration hop(TaskId from, TaskId to,
               HopBoundMethod method = HopBoundMethod::kNonPreemptive) const;

  /// Memoized W(π)/B(π) of a chain; equals backward_bounds(graph(), chain,
  /// response_times(), method), with W assembled from the memoized hops.
  BackwardBounds chain_bounds(
      const Path& chain,
      HopBoundMethod method = HopBoundMethod::kNonPreemptive) const;

  /// Memoized enumerated source→task chain set P (reference stays valid
  /// for the engine's lifetime).  Throws CapacityError past `path_cap`.
  const std::vector<Path>& chains(
      TaskId task, std::size_t path_cap = kDefaultPathCap) const;

  /// All tasks fusing >= 2 source chains (the tasks with a nontrivial
  /// disparity) — the natural argument for disparity_all.
  std::vector<TaskId> fusing_tasks() const;

  /// Memoized task-level disparity analysis; byte-identical to
  /// analyze_time_disparity(graph(), task, response_times(), opt).
  DisparityReport disparity(TaskId task, const DisparityOptions& opt = {}) const;

  /// Batch analysis of many tasks, fanned out over the engine's thread
  /// pool (options().num_threads workers; <= 1 runs inline).  Results are
  /// positionally aligned with `tasks` and bit-identical to calling
  /// disparity() serially for each.
  std::vector<DisparityReport> disparity_all(
      const std::vector<TaskId>& tasks, const DisparityOptions& opt = {}) const;

  /// End-to-end latency bounds of one chain (must be a path of graph()).
  LatencyReport latency(
      const Path& chain,
      HopBoundMethod method = HopBoundMethod::kNonPreemptive) const;

  /// Algorithm 1 on one chain pair (both ending at the same task).
  BufferDesign optimize_buffer_pair(
      const Path& lambda, const Path& nu,
      HopBoundMethod method = HopBoundMethod::kNonPreemptive) const;

  /// Multi-chain buffer design for every chain fusing at `task` (§IV
  /// generalized); equals design_buffers_for_task on this graph.
  MultiBufferDesign optimize_buffers(TaskId task,
                                     const DisparityOptions& opt = {}) const;

  /// Snapshot of the engine's private metrics registry: the cache
  /// counters ("engine.rta.runs", "engine.hop.hits", ...) plus duration
  /// histograms for RTA and disparity computation ("engine.rta.compute",
  /// "engine.disparity.compute").  Point-in-time consistent per
  /// instrument.
  obs::MetricsSnapshot metrics() const;

  /// The engine's private registry (stable for the engine's lifetime);
  /// exposed so callers can attach their own instruments to the same
  /// snapshot.
  obs::MetricsRegistry& metrics_registry() const { return metrics_; }

  /// Snapshot of the cache counters.  Thin shim over metrics(): each field
  /// is the value of the corresponding registry counter (asserted
  /// byte-identical in tests/test_engine_cache.cpp).  Prefer metrics().
  EngineCacheStats cache_stats() const;

 private:
  struct ChainKey {
    Path chain;
    HopBoundMethod method;
    bool operator==(const ChainKey&) const = default;
  };
  struct ChainKeyHash {
    std::size_t operator()(const ChainKey& k) const;
  };
  struct ReportKey {
    TaskId task = 0;
    DisparityMethod method = DisparityMethod::kForkJoin;
    HopBoundMethod hop_method = HopBoundMethod::kNonPreemptive;
    std::size_t path_cap = 0;
    JointTruncation truncation = JointTruncation::kAuto;
    KeepPairs keep_pairs = KeepPairs::kAll;
    /// Normalized to 0 unless keep_pairs == kTopK (top_k is inert then, and
    /// must not split cache entries).
    std::size_t top_k = 0;
    bool operator==(const ReportKey&) const = default;
  };
  struct ReportKeyHash {
    std::size_t operator()(const ReportKey& k) const;
  };

  /// Cache instruments, resolved once against metrics_ (counter() takes
  /// the registry mutex; the references are wait-free afterwards).
  struct Instruments {
    explicit Instruments(obs::MetricsRegistry& r);
    obs::Counter& rta_runs;
    obs::Counter& hop_hits;
    obs::Counter& hop_misses;
    obs::Counter& chain_bound_hits;
    obs::Counter& chain_bound_misses;
    obs::Counter& chain_set_hits;
    obs::Counter& chain_set_misses;
    obs::Counter& report_hits;
    obs::Counter& report_misses;
    obs::DurationHistogram& rta_compute;
    obs::DurationHistogram& disparity_compute;
  };

  void ensure_rta() const;
  BackwardBoundsFn bounds_provider() const;
  ThreadPool& pool() const;

  TaskGraph graph_;
  EngineOptions opt_;

  // Per-engine registry: cache statistics never bleed across engines.
  mutable obs::MetricsRegistry metrics_;
  mutable Instruments ins_{metrics_};

  mutable std::mutex rta_mutex_;
  mutable std::unique_ptr<RtaResult> rta_;          // engine-owned mode
  mutable std::unique_ptr<ResponseTimeMap> external_rtm_;  // external mode

  mutable std::mutex hop_mutex_;
  mutable std::unordered_map<std::uint64_t, Duration> hop_cache_;

  mutable std::mutex chain_bound_mutex_;
  mutable std::unordered_map<ChainKey, BackwardBounds, ChainKeyHash>
      chain_bound_cache_;

  mutable std::mutex chain_set_mutex_;
  // Keyed by (task, cap); unique_ptr keeps returned references stable
  // across rehashes.
  mutable std::unordered_map<std::uint64_t,
                             std::unique_ptr<std::vector<Path>>>
      chain_set_cache_;

  mutable std::mutex report_mutex_;
  mutable std::unordered_map<ReportKey,
                             std::shared_ptr<const DisparityReport>,
                             ReportKeyHash>
      report_cache_;

  mutable std::mutex pool_mutex_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ceta
