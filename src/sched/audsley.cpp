#include "sched/audsley.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "common/error.hpp"

namespace ceta {

namespace {

/// Feasibility of `candidate` at the lowest level of `unassigned`:
/// all other unassigned tasks interfere from above, already-assigned
/// (lower) tasks contribute only blocking.
bool schedulable_at_lowest(const TaskGraph& g, TaskId candidate,
                           const std::vector<TaskId>& unassigned,
                           Duration blocking_below, const RtaOptions& opt) {
  const Task& t = g.task(candidate);
  std::vector<CompetingTask> hp;
  hp.reserve(unassigned.size());
  for (TaskId other : unassigned) {
    if (other == candidate) continue;
    hp.push_back(
        {g.task(other).wcet, g.task(other).period, g.task(other).jitter});
  }
  const Duration r = npfp_response_time(t.wcet, t.period, blocking_below, hp,
                                        t.jitter, opt.max_iterations);
  return r != Duration::max() && (!opt.implicit_deadline || r <= t.period);
}

}  // namespace

AudsleyResult assign_priorities_audsley(TaskGraph& g, const RtaOptions& opt) {
  std::map<EcuId, std::vector<TaskId>> by_ecu;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (g.task(id).ecu != kNoEcu) by_ecu[g.task(id).ecu].push_back(id);
  }

  AudsleyResult result;
  std::map<TaskId, int> assignment;
  for (const auto& [ecu, tasks] : by_ecu) {
    std::vector<TaskId> unassigned = tasks;
    // Blocking seen by a level comes from the max WCET strictly below it.
    Duration blocking_below = Duration::zero();
    bool ok = true;
    for (int level = static_cast<int>(tasks.size()) - 1; level >= 0;
         --level) {
      // Prefer the largest-period candidate first: a heuristic that keeps
      // the result close to rate-monotonic where possible (any feasible
      // candidate preserves optimality — that is Audsley's theorem).
      std::vector<TaskId> order = unassigned;
      std::sort(order.begin(), order.end(), [&g](TaskId a, TaskId b) {
        if (g.task(a).period != g.task(b).period) {
          return g.task(a).period > g.task(b).period;
        }
        return a > b;
      });
      bool placed = false;
      for (TaskId candidate : order) {
        if (schedulable_at_lowest(g, candidate, unassigned, blocking_below,
                                  opt)) {
          assignment[candidate] = level;
          unassigned.erase(
              std::find(unassigned.begin(), unassigned.end(), candidate));
          blocking_below = std::max(blocking_below, g.task(candidate).wcet);
          placed = true;
          break;
        }
      }
      if (!placed) {
        ok = false;
        break;
      }
    }
    if (!ok) result.infeasible_ecus.push_back(ecu);
  }

  result.feasible = result.infeasible_ecus.empty();
  if (result.feasible) {
    for (const auto& [task, prio] : assignment) {
      g.task(task).priority = prio;
    }
  }
  return result;
}

}  // namespace ceta
