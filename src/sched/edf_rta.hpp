// Worst-case response-time analysis for preemptive EDF (ROADMAP item 4).
//
// Processor-demand analysis in the style of Spuri / George et al. for
// implicit deadlines (D = T).  For a task i on its resource:
//
//   busy len  L     = fixpoint of  L = Σ_j ceil((L + J_j)/T_j)·C_j
//                     over the *whole* cohort (priorities do not gate
//                     dispatch under EDF),
//   arrivals  a     ∈ deadline-coincidence points { k·T_j + D_j − D_i −
//                     J_j } ∪ { k·T_i } within [0, L),
//   workload  w(a)  = fixpoint of  w = (floor(a/T_i)+1)·C_i +
//                     Σ_{j≠i} min( ceil((w + J_j)/T_j),
//                                  floor((a + D_i − D_j + J_j)/T_j) + 1 )·C_j
//   response  R_i   = J_i + max_a ( max(C_i, w(a) − a) )
//
// The min() clamps competitor demand to jobs that are both released
// inside the busy window *and* have an absolute deadline no later than
// the analyzed job's (only those run first under EDF).  Jitter is treated
// conservatively on both terms — competitor releases and deadlines are
// pulled earlier by J_j, which can only add interference — so the result
// stays a safe upper bound for jittered release patterns; the analyzed
// task's own jitter is added at the end (response relative to the
// *nominal* release, matching npfp_response_time's convention).
//
// Source tasks never reach this analysis (R = jitter, like NP-FP).

#pragma once

#include <vector>

#include "common/time.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

/// WCRT of a single task under preemptive EDF with implicit deadlines,
/// given *every* other task sharing its resource (not just
/// higher-priority ones — EDF ignores priorities).  Returns
/// Duration::max() if the fixpoint diverges or the candidate-arrival set
/// exceeds an internal capacity cap (both are reported as unschedulable
/// by analyze_response_times, the safe direction).  `fault_undercount`
/// is the verify-only hook of RtaOptions::fault_edf_undercount.
Duration edf_response_time(Duration wcet, Duration period,
                           const std::vector<CompetingTask>& others,
                           Duration own_jitter = Duration::zero(),
                           int max_iterations = 100'000,
                           bool fault_undercount = false);

}  // namespace ceta
