// Priority and ECU assignment policies.
//
// Fixed-priority scheduling needs a total priority order among the tasks of
// each ECU (smaller value = higher priority).  Rate-monotonic order is the
// standard choice for periodic automotive tasks and is what the evaluation
// uses; index order is provided for deterministic fixtures.

#pragma once

#include "common/rng.hpp"
#include "graph/task_graph.hpp"

namespace ceta {

/// Rate-monotonic priorities per ECU: shorter period → higher priority
/// (smaller value); ties broken by task id.  Source tasks are skipped.
void assign_priorities_rate_monotonic(TaskGraph& g);

/// Priorities by task id per ECU (deterministic fixture order).
void assign_priorities_by_index(TaskGraph& g);

/// Map every non-source task to a uniformly random ECU in [0, num_ecus).
void assign_ecus_random(TaskGraph& g, int num_ecus, Rng& rng);

/// Map every non-source task to the single ECU 0.
void assign_ecus_single(TaskGraph& g);

/// Draw a release offset for every task uniformly from [0, T) (evaluation
/// §V randomizes offsets per simulation run).
void randomize_offsets(TaskGraph& g, Rng& rng);

}  // namespace ceta
