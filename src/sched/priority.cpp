#include "sched/priority.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace ceta {

namespace {

/// Assign 0..k-1 per ECU following the order induced by `less`.
template <typename Less>
void assign_per_ecu(TaskGraph& g, Less less) {
  std::map<EcuId, std::vector<TaskId>> by_ecu;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const Task& t = g.task(id);
    if (t.ecu == kNoEcu) continue;
    by_ecu[t.ecu].push_back(id);
  }
  for (auto& [ecu, ids] : by_ecu) {
    std::sort(ids.begin(), ids.end(), less);
    int prio = 0;
    for (TaskId id : ids) g.task(id).priority = prio++;
  }
}

}  // namespace

void assign_priorities_rate_monotonic(TaskGraph& g) {
  assign_per_ecu(g, [&g](TaskId a, TaskId b) {
    const Duration ta = g.task(a).period;
    const Duration tb = g.task(b).period;
    if (ta != tb) return ta < tb;
    return a < b;
  });
}

void assign_priorities_by_index(TaskGraph& g) {
  assign_per_ecu(g, [](TaskId a, TaskId b) { return a < b; });
}

void assign_ecus_random(TaskGraph& g, int num_ecus, Rng& rng) {
  CETA_EXPECTS(num_ecus >= 1, "assign_ecus_random: need at least one ECU");
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (g.is_source(id)) {
      g.task(id).ecu = kNoEcu;
    } else {
      g.task(id).ecu = static_cast<EcuId>(rng.uniform_int(0, num_ecus - 1));
    }
  }
}

void assign_ecus_single(TaskGraph& g) {
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    g.task(id).ecu = g.is_source(id) ? kNoEcu : 0;
  }
}

void randomize_offsets(TaskGraph& g, Rng& rng) {
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    Task& t = g.task(id);
    t.offset = rng.uniform_duration(Duration::zero(),
                                    t.period - Duration::ns(1));
  }
}

}  // namespace ceta
