#include "sched/edf_rta.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"

namespace ceta {

namespace {

/// Cap on the deadline-coincidence candidate set.  Past it the analysis
/// gives up and reports divergence (treated as unschedulable — safe);
/// WATERS-style period sets stay orders of magnitude below this.
constexpr std::int64_t kMaxCandidates = 200'000;

/// Synchronous busy period of the whole cohort:
/// L = Σ_j ceil((L + J_j)/T_j)·C_j.  Duration::max() on divergence.
Duration edf_busy_period(const std::vector<CompetingTask>& cohort,
                         int max_iterations) {
  Duration L = Duration::zero();
  for (const CompetingTask& c : cohort) L += c.wcet;
  if (L == Duration::zero()) return Duration::zero();
  for (int it = 0; it < max_iterations; ++it) {
    Duration next = Duration::zero();
    for (const CompetingTask& c : cohort) {
      next += c.wcet * ceil_div(L + c.jitter, c.period);
    }
    if (next == L) return L;
    CETA_ASSERT(next > L, "EDF busy period iteration must be non-decreasing");
    L = next;
  }
  return Duration::max();
}

}  // namespace

Duration edf_response_time(Duration wcet, Duration period,
                           const std::vector<CompetingTask>& others,
                           Duration own_jitter, int max_iterations,
                           bool fault_undercount) {
  CETA_EXPECTS(period > Duration::zero(),
               "edf_response_time: period must be positive");
  double density = wcet.ratio(period);
  for (const CompetingTask& c : others) density += c.wcet.ratio(c.period);
  if (density >= 1.0) return Duration::max();

  std::vector<CompetingTask> cohort = others;
  cohort.push_back({wcet, period, own_jitter});
  const Duration L = edf_busy_period(cohort, max_iterations);
  if (L == Duration::max()) return Duration::max();
  if (L == Duration::zero()) return own_jitter + wcet;

  // Candidate arrivals of the analyzed task: every point in [0, L) where
  // its absolute deadline a + D_i coincides with a (jitter-shifted)
  // cohort deadline k·T_j + D_j − J_j, plus its own nominal releases
  // k·T_i (the steps of the own-demand term).  The response function is
  // piecewise in a with steps exactly at these points, so maximizing over
  // them is exact for the formula above.
  std::vector<Duration> candidates;
  std::int64_t budget = kMaxCandidates;
  const auto push_lattice = [&](Duration start, Duration step) -> bool {
    Duration a = start;
    while (a < Duration::zero()) a += step;
    budget -= ceil_div(L - a, step);
    if (budget < 0) return false;
    for (; a < L; a += step) candidates.push_back(a);
    return true;
  };
  if (!push_lattice(Duration::zero(), period)) return Duration::max();
  for (const CompetingTask& c : others) {
    // k·T_j + D_j − D_i − J_j with implicit deadlines D = T.
    if (!push_lattice(c.period - period - c.jitter, c.period)) {
      return Duration::max();
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  Duration worst = wcet;
  for (const Duration a : candidates) {
    const Duration d = a + period;  // absolute deadline of the a-instance
    Duration w = wcet * (floor_div(a, period) + 1);
    bool converged = false;
    for (int it = 0; it < max_iterations; ++it) {
      Duration next = wcet * (floor_div(a, period) + 1);
      for (const CompetingTask& c : others) {
        const std::int64_t in_window = ceil_div(w + c.jitter, c.period);
        std::int64_t by_deadline =
            floor_div(d - c.period + c.jitter, c.period) + 1;
        if (fault_undercount) --by_deadline;
        by_deadline = std::max<std::int64_t>(0, by_deadline);
        next += c.wcet * std::min(in_window, by_deadline);
      }
      if (next == w) {
        converged = true;
        break;
      }
      CETA_ASSERT(next > w, "EDF response iteration must be non-decreasing");
      w = next;
    }
    if (!converged) return Duration::max();
    worst = std::max(worst, std::max(wcet, w - a));
  }
  return own_jitter + worst;
}

}  // namespace ceta
