#include "sched/npfp_rta.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/math.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sched/edf_rta.hpp"

namespace ceta {

namespace {

using Competitor = CompetingTask;

/// Fixpoint of L = blocking + q-independent demand over [0, L).
/// Returns Duration::max() on divergence.
Duration busy_period_length(Duration blocking,
                            const std::vector<Competitor>& own_and_hp,
                            int max_iterations) {
  Duration L = blocking;
  for (const Competitor& c : own_and_hp) L += c.wcet;
  if (L == Duration::zero()) return Duration::zero();
  for (int it = 0; it < max_iterations; ++it) {
    Duration next = blocking;
    for (const Competitor& c : own_and_hp) {
      next += c.wcet * ceil_div(L + c.jitter, c.period);
    }
    if (next == L) return L;
    CETA_ASSERT(next > L, "busy period iteration must be non-decreasing");
    L = next;
  }
  return Duration::max();
}

/// Fixpoint of w = blocking + q*W_i + Σ_hp (floor(w/T)+1)*W.
/// Returns Duration::max() on divergence.
Duration queueing_delay(Duration blocking, Duration own_wcet, std::int64_t q,
                        const std::vector<Competitor>& hp,
                        int max_iterations) {
  Duration w = blocking + own_wcet * q;
  for (int it = 0; it < max_iterations; ++it) {
    Duration next = blocking + own_wcet * q;
    for (const Competitor& c : hp) {
      next += c.wcet * (floor_div(w + c.jitter, c.period) + 1);
    }
    if (next == w) return w;
    CETA_ASSERT(next > w, "queueing delay iteration must be non-decreasing");
    w = next;
  }
  return Duration::max();
}

/// WCRT + schedulability of one task, written into `res`.  Single source
/// of truth shared by analyze_response_times and
/// reanalyze_response_times — scoped refreshes are bit-identical to a
/// full run because both execute exactly this routine per task.
void analyze_task_into(const TaskGraph& g, const RtaOptions& opt, TaskId id,
                       RtaResult& res) {
  const Task& t = g.task(id);
  res.schedulable[id] = true;
  if (t.ecu == kNoEcu) {
    // Source tasks (external stimuli) finish instantly at their actual
    // release, up to `jitter` after the nominal one.
    res.response_time[id] = t.jitter;
    return;
  }

  // Partition same-resource competitors by priority (EDF ignores the
  // partition and contends against the full cohort).
  std::vector<Competitor> hp;
  std::vector<Competitor> cohort;
  Duration blocking = Duration::zero();
  for (TaskId other = 0; other < g.num_tasks(); ++other) {
    if (other == id) continue;
    const Task& o = g.task(other);
    if (o.ecu != t.ecu) continue;
    CETA_EXPECTS(o.priority != t.priority,
                 "analyze_response_times: duplicate priority on ECU " +
                     std::to_string(t.ecu));
    cohort.push_back({o.wcet, o.period, o.jitter});
    if (higher_priority(o, t)) {
      hp.push_back({o.wcet, o.period, o.jitter});
    } else {
      blocking = std::max(blocking, o.wcet);
    }
  }

  if (resource_utilization(g, t.ecu) >= 1.0) {
    res.response_time[id] = Duration::max();
    res.schedulable[id] = false;
    return;
  }

  const SchedPolicy policy = opt.policy.value_or(g.policy(t.ecu));
  Duration worst = Duration::zero();
  switch (policy) {
    case SchedPolicy::kNonPreemptive:
      worst = npfp_response_time(t.wcet, t.period, blocking, hp, t.jitter,
                                 opt.max_iterations);
      break;
    case SchedPolicy::kPreemptive:
      if (opt.fault_drop_largest_hp && !hp.empty()) {
        const auto widest = std::max_element(
            hp.begin(), hp.end(), [](const Competitor& a, const Competitor& b) {
              return a.wcet < b.wcet;
            });
        hp.erase(widest);
      }
      worst = preemptive_response_time(t.wcet, t.period, hp, t.jitter,
                                       opt.max_iterations);
      break;
    case SchedPolicy::kEdf:
      worst = edf_response_time(t.wcet, t.period, cohort, t.jitter,
                                opt.max_iterations, opt.fault_edf_undercount);
      break;
  }
  if (worst == Duration::max()) {
    res.response_time[id] = Duration::max();
    res.schedulable[id] = false;
    return;
  }
  res.response_time[id] = worst;
  if (opt.implicit_deadline && worst > t.period) {
    res.schedulable[id] = false;
  }
}

}  // namespace

Duration npfp_response_time(Duration wcet, Duration period, Duration blocking,
                            const std::vector<CompetingTask>& hp,
                            Duration own_jitter, int max_iterations) {
  CETA_EXPECTS(period > Duration::zero(),
               "npfp_response_time: period must be positive");
  // Divergence pre-check: demand density of the busy period.
  double density = 0.0;
  for (const CompetingTask& c : hp) density += c.wcet.ratio(c.period);
  density += wcet.ratio(period);
  if (density >= 1.0) return Duration::max();

  std::vector<CompetingTask> own_and_hp = hp;
  own_and_hp.push_back({wcet, period, own_jitter});
  const Duration L = busy_period_length(blocking, own_and_hp, max_iterations);
  if (L == Duration::max()) return Duration::max();
  const std::int64_t Q = std::max<std::int64_t>(1, ceil_div(L, period));
  Duration worst = Duration::zero();
  for (std::int64_t q = 0; q < Q; ++q) {
    const Duration w = queueing_delay(blocking, wcet, q, hp, max_iterations);
    if (w == Duration::max()) return Duration::max();
    // Response relative to the nominal release: the q-th instance may be
    // released up to own_jitter late but queues from its actual release.
    worst = std::max(worst, own_jitter + w + wcet - period * q);
  }
  return worst;
}

Duration preemptive_response_time(Duration wcet, Duration period,
                                  const std::vector<CompetingTask>& hp,
                                  Duration own_jitter, int max_iterations) {
  CETA_EXPECTS(period > Duration::zero(),
               "preemptive_response_time: period must be positive");
  double density = wcet.ratio(period);
  for (const CompetingTask& c : hp) density += c.wcet.ratio(c.period);
  if (density >= 1.0) return Duration::max();

  // Level-i busy period (jitter-aware).
  std::vector<CompetingTask> own_and_hp = hp;
  own_and_hp.push_back({wcet, period, own_jitter});
  const Duration L =
      busy_period_length(Duration::zero(), own_and_hp, max_iterations);
  if (L == Duration::max()) return Duration::max();
  const std::int64_t Q = std::max<std::int64_t>(1, ceil_div(L, period));

  Duration worst = Duration::zero();
  for (std::int64_t q = 0; q < Q; ++q) {
    // w_q = (q+1)·C + Σ_hp ceil((w_q + J)/T)·C, by fixpoint iteration.
    Duration w = wcet * (q + 1);
    bool converged = false;
    for (int it = 0; it < max_iterations; ++it) {
      Duration next = wcet * (q + 1);
      for (const CompetingTask& c : hp) {
        next += c.wcet * ceil_div(w + c.jitter, c.period);
      }
      if (next == w) {
        converged = true;
        break;
      }
      CETA_ASSERT(next > w,
                  "preemptive response iteration must be non-decreasing");
      w = next;
    }
    if (!converged) return Duration::max();
    worst = std::max(worst, own_jitter + w - period * q);
  }
  return worst;
}

std::vector<EcuId> resources_of(const TaskGraph& g) {
  std::set<EcuId> seen;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const EcuId e = g.task(id).ecu;
    if (e != kNoEcu) seen.insert(e);
  }
  return {seen.begin(), seen.end()};
}

double resource_utilization(const TaskGraph& g, EcuId ecu) {
  double u = 0.0;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const Task& t = g.task(id);
    if (t.ecu == ecu && t.ecu != kNoEcu) {
      u += t.wcet.ratio(t.period);
    }
  }
  return u;
}

RtaResult analyze_response_times(const TaskGraph& g, const RtaOptions& opt) {
  obs::Span span("sched", "analyze_response_times");
  span.arg("tasks", static_cast<std::int64_t>(g.num_tasks()));
  static obs::Counter& runs =
      obs::MetricsRegistry::global().counter("sched.rta.runs");
  static obs::Counter& tasks_analyzed =
      obs::MetricsRegistry::global().counter("sched.rta.tasks");
  runs.add();
  tasks_analyzed.add(g.num_tasks());

  RtaResult res;
  res.response_time.assign(g.num_tasks(), Duration::zero());
  res.schedulable.assign(g.num_tasks(), true);

  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    analyze_task_into(g, opt, id, res);
  }

  res.all_schedulable = std::all_of(res.schedulable.begin(),
                                    res.schedulable.end(),
                                    [](bool b) { return b; });
  return res;
}

void reanalyze_response_times(const TaskGraph& g, const RtaOptions& opt,
                              const std::vector<TaskId>& tasks,
                              RtaResult& res) {
  CETA_EXPECTS(res.response_time.size() == g.num_tasks() &&
                   res.schedulable.size() == g.num_tasks(),
               "reanalyze_response_times: result size mismatch");
  obs::Span span("sched", "reanalyze_response_times");
  span.arg("tasks", static_cast<std::int64_t>(tasks.size()));
  static obs::Counter& refreshes =
      obs::MetricsRegistry::global().counter("sched.rta.refreshes");
  static obs::Counter& tasks_analyzed =
      obs::MetricsRegistry::global().counter("sched.rta.tasks");
  refreshes.add();
  tasks_analyzed.add(tasks.size());

  for (const TaskId id : tasks) {
    CETA_EXPECTS(id < g.num_tasks(),
                 "reanalyze_response_times: unknown task id");
    analyze_task_into(g, opt, id, res);
  }
  res.all_schedulable = std::all_of(res.schedulable.begin(),
                                    res.schedulable.end(),
                                    [](bool b) { return b; });
}

}  // namespace ceta
