// CAN-bus communication modeling.
//
// Per §II-A, communication between tasks on different ECUs is modeled as a
// periodic task on the bus (e.g. CAN).  `insert_can_messages` rewrites the
// graph: every edge (u, v) whose endpoints are mapped to different ECUs is
// replaced by u → msg → v, where msg is a periodic task on the bus
// resource with the producer's period and the configured transmission
// time.  All analyses and the simulator then treat the bus uniformly as
// one more non-preemptive fixed-priority resource — which is exactly how
// CAN arbitration behaves.

#pragma once

#include "common/time.hpp"
#include "graph/task_graph.hpp"

namespace ceta {

struct BusConfig {
  /// Resource id of the bus; must differ from every ECU id in use.
  EcuId bus_resource = 1000;
  /// Worst-/best-case transmission time of one message frame.
  Duration msg_wcet = Duration::us(200);
  Duration msg_bcet = Duration::us(100);
};

/// Rewrite inter-ECU edges through bus message tasks.  Edges from source
/// tasks are left intact (sensors feed their ECU directly).  Message tasks
/// receive rate-monotonic priorities on the bus resource.  Channel specs of
/// rewritten edges are preserved on the producer→message edge.
TaskGraph insert_can_messages(const TaskGraph& g, const BusConfig& cfg);

}  // namespace ceta
