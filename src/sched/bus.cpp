#include "sched/bus.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace ceta {

TaskGraph insert_can_messages(const TaskGraph& g, const BusConfig& cfg) {
  CETA_EXPECTS(cfg.msg_bcet >= Duration::zero() &&
                   cfg.msg_bcet <= cfg.msg_wcet,
               "insert_can_messages: need 0 <= msg_bcet <= msg_wcet");
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    CETA_EXPECTS(g.task(id).ecu != cfg.bus_resource,
                 "insert_can_messages: bus resource id collides with an ECU");
  }

  TaskGraph out;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    out.add_task(g.task(id));  // ids preserved
  }

  std::vector<TaskId> bus_tasks;
  for (const Edge& e : g.edges()) {
    const Task& u = g.task(e.from);
    const Task& v = g.task(e.to);
    const bool crosses =
        u.ecu != kNoEcu && v.ecu != kNoEcu && u.ecu != v.ecu;
    if (!crosses) {
      out.add_edge(e.from, e.to, e.channel);
      continue;
    }
    Task msg;
    msg.name = "msg_" + u.name + "_" + v.name;
    msg.period = u.period;
    msg.offset = u.offset;
    msg.wcet = cfg.msg_wcet;
    msg.bcet = cfg.msg_bcet;
    msg.ecu = cfg.bus_resource;
    const TaskId mid = out.add_task(std::move(msg));
    bus_tasks.push_back(mid);
    out.add_edge(e.from, mid, e.channel);
    out.add_edge(mid, e.to);
  }

  // Rate-monotonic priorities among the new message tasks on the bus.
  std::sort(bus_tasks.begin(), bus_tasks.end(), [&out](TaskId a, TaskId b) {
    const Duration ta = out.task(a).period;
    const Duration tb = out.task(b).period;
    if (ta != tb) return ta < tb;
    return a < b;
  });
  int prio = 0;
  for (TaskId id : bus_tasks) out.task(id).priority = prio++;

  return out;
}

}  // namespace ceta
