// Audsley's Optimal Priority Assignment (OPA) for non-preemptive fixed
// priority.
//
// Rate-monotonic order is the usual default but is not optimal under
// non-preemptive scheduling (a long low-priority WCET blocks short-period
// tasks).  Audsley's algorithm assigns priorities from the lowest level
// upward: at each level it looks for *some* unassigned task that is
// schedulable there assuming all other unassigned tasks have higher
// priority; the NP-FP response-time test is OPA-compatible (a task's WCRT
// at a level depends only on the sets above and below it, not their
// relative order: interference comes from the set above, blocking from
// the max WCET below).

#pragma once

#include "graph/task_graph.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

struct AudsleyResult {
  /// True iff every ECU received a feasible assignment; priorities are
  /// written into the graph only in that case.
  bool feasible = false;
  /// ECUs for which no feasible assignment exists (empty when feasible).
  std::vector<EcuId> infeasible_ecus;
};

/// Run OPA independently on every ECU of the graph.  On success the
/// graph's priorities are replaced by a feasible assignment (0 = highest
/// per ECU); on failure the graph is left unmodified.
AudsleyResult assign_priorities_audsley(TaskGraph& g,
                                        const RtaOptions& opt = {});

}  // namespace ceta
