// Worst-case response-time analysis for non-preemptive fixed-priority
// scheduling (NP-FP).
//
// The paper assumes each task's WCRT R(τ) is known from standard analyses
// ([12], [13] in the paper).  We implement the classic busy-period NP-FP
// analysis (as used for CAN): for task i on its resource,
//
//   blocking  B_i       = max { W_l : l lower priority than i, same ECU }
//   busy len  L         = fixpoint of  L = B_i + Σ_{j ∈ hp(i) ∪ {i}} ceil(L/T_j)·W_j
//   instances Q         = ceil(L / T_i)
//   queueing  w_i(q)    = fixpoint of  w = B_i + q·W_i +
//                                      Σ_{j ∈ hp(i)} (floor(w/T_j)+1)·W_j
//   response  R_i       = max_{0<=q<Q} ( w_i(q) + W_i − q·T_i )
//
// The (floor(w/T)+1) term counts higher-priority releases in [0, w]
// *inclusive*: a release at the exact start instant still wins the
// arbitration, which is the safe direction for non-preemptive starts.
// Release offsets are ignored (synchronous critical instant — safe).
//
// Source tasks execute in zero time: R = 0.

#pragma once

#include <optional>
#include <vector>

#include "common/time.hpp"
#include "graph/task_graph.hpp"

namespace ceta {

/// Options of the per-resource response-time analysis.  The scheduling
/// discipline itself lives per ECU on the TaskGraph (SchedPolicy in
/// graph/task.hpp); `policy` here is a global override for callers that
/// want to force one discipline everywhere (ablations, what-if columns).
struct RtaOptions {
  /// Force a single discipline on every ECU; nullopt (the default) means
  /// each ECU is analyzed under its own TaskGraph::policy().
  std::optional<SchedPolicy> policy;
  /// Abort fixpoint iterations beyond this bound (diverging systems).
  int max_iterations = 100'000;
  /// Consider a task schedulable iff R <= deadline, with implicit
  /// deadline = period (the paper's schedulability notion, §II-B).
  bool implicit_deadline = true;
  /// Fault hook (verify only): the preemptive-FP branch drops its
  /// largest-WCET higher-priority competitor — an unsound bound the
  /// rta_policy_matches_sim property must catch.  Affects only
  /// SchedPolicy::kPreemptive tasks.
  bool fault_drop_largest_hp = false;
  /// Fault hook (verify only): the EDF branch undercounts the
  /// deadline-constrained interfering jobs of every competitor by one.
  /// Affects only SchedPolicy::kEdf tasks.
  bool fault_edf_undercount = false;
};

/// Output of analyze_response_times: per-task WCRT upper bounds plus the
/// schedulability verdicts derived from them.
struct RtaResult {
  /// WCRT upper bound per task; Duration::max() if the fixpoint diverged
  /// (over-utilized resource).
  std::vector<Duration> response_time;
  /// R(τ) <= T(τ) per task.
  std::vector<bool> schedulable;
  /// All tasks schedulable.
  bool all_schedulable = false;
};

/// A map from TaskId to a safe WCRT upper bound.  The analyses in
/// chain/ and disparity/ accept any such map, so alternative RTAs can be
/// plugged in.
using ResponseTimeMap = std::vector<Duration>;

/// Run the NP-FP analysis on every resource of the graph.  The graph must
/// pass TaskGraph::validate() except that offsets are ignored here.
RtaResult analyze_response_times(const TaskGraph& g,
                                 const RtaOptions& opt = {});

/// Re-run the analysis for `tasks` only, updating `res` in place.
///
/// The NP-FP fixpoint is strictly per-task: R(τ) depends only on τ's own
/// parameters and its same-ECU competitors, never on other tasks' response
/// times.  Re-analyzing exactly the tasks whose inputs changed (their ECU
/// cohort after a WCET/priority/period edit) therefore reproduces the
/// corresponding entries of a full analyze_response_times() run
/// bit-identically — both call the same per-task routine.  `res` must come
/// from a prior analysis of a graph with the same task count;
/// res.all_schedulable is recomputed from the updated vector.  O(Σ cohort
/// fixpoints + V) instead of O(all fixpoints).
void reanalyze_response_times(const TaskGraph& g, const RtaOptions& opt,
                              const std::vector<TaskId>& tasks,
                              RtaResult& res);

/// A competing task on the same resource (higher-priority under the FP
/// analyses; any cohort member under EDF).
struct CompetingTask {
  Duration wcet;    ///< Worst-case execution time of the competitor.
  Duration period;  ///< Release period of the competitor.
  Duration jitter = Duration::zero();  ///< Release jitter of the competitor.
};

/// WCRT of a single task under NP-FP given its blocking term (max WCET of
/// lower-priority same-resource tasks) and higher-priority competitor set,
/// jitter-aware (standard (w + J)/T interference; the result is relative
/// to the *nominal* release and includes the task's own jitter).
/// Returns Duration::max() if the fixpoint diverges (overload).  This is
/// the primitive both analyze_response_times and Audsley's OPA build on.
Duration npfp_response_time(Duration wcet, Duration period, Duration blocking,
                            const std::vector<CompetingTask>& hp,
                            Duration own_jitter = Duration::zero(),
                            int max_iterations = 100'000);

/// WCRT of a single task under fully preemptive fixed priority: classic
/// jitter-aware busy-period analysis, w_q = (q+1)·C + Σ_hp ceil((w_q +
/// J)/T)·C, R = max_q (J + w_q − q·T).  Returns Duration::max() on
/// divergence.
Duration preemptive_response_time(Duration wcet, Duration period,
                                  const std::vector<CompetingTask>& hp,
                                  Duration own_jitter = Duration::zero(),
                                  int max_iterations = 100'000);

/// Utilization Σ W/T of the tasks mapped to `ecu`.
double resource_utilization(const TaskGraph& g, EcuId ecu);

/// All distinct resources used by the graph (excluding kNoEcu).
std::vector<EcuId> resources_of(const TaskGraph& g);

}  // namespace ceta
