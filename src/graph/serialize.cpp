#include "graph/serialize.hpp"

#include <map>
#include <sstream>

#include "common/error.hpp"

namespace ceta {

std::string to_text(const TaskGraph& g) {
  std::ostringstream os;
  os << "# ceta cause-effect graph: " << g.num_tasks() << " tasks, "
     << g.num_edges() << " edges\n";
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const Task& t = g.task(id);
    os << "task " << t.name << ' ' << t.wcet.count() << ' ' << t.bcet.count()
       << ' ' << t.period.count() << ' ' << t.offset.count() << ' '
       << t.priority << ' ' << t.ecu
       << (t.comm == CommSemantics::kLet ? " let" : "");
    if (t.jitter != Duration::zero()) os << " J=" << t.jitter.count();
    os << '\n';
  }
  for (const Edge& e : g.edges()) {
    os << "edge " << g.task(e.from).name << ' ' << g.task(e.to).name;
    if (e.channel.buffer_size != 1) os << ' ' << e.channel.buffer_size;
    os << '\n';
  }
  // Only non-default overrides are emitted, so pre-policy graphs
  // round-trip byte-identically.
  for (const auto& [ecu, pol] : g.policies()) {
    os << "policy " << ecu << ' '
       << (pol == SchedPolicy::kPreemptive ? "preemptive" : "edf") << '\n';
  }
  return os.str();
}

TaskGraph graph_from_text(const std::string& text) {
  TaskGraph g;
  std::map<std::string, TaskId> by_name;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& why) -> void {
    throw PreconditionError("graph_from_text: line " +
                            std::to_string(line_no) + ": " + why);
  };
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind) || kind[0] == '#') continue;
    if (kind == "task") {
      Task t;
      std::int64_t wcet = 0, bcet = 0, period = 0, offset = 0;
      if (!(ls >> t.name >> wcet >> bcet >> period >> offset >> t.priority >>
            t.ecu)) {
        fail("malformed task line");
      }
      if (by_name.count(t.name) != 0) fail("duplicate task '" + t.name + "'");
      std::string extra;
      while (ls >> extra) {  // optional trailing attributes
        if (extra == "let") {
          t.comm = CommSemantics::kLet;
        } else if (extra == "implicit") {
          t.comm = CommSemantics::kImplicit;
        } else if (extra.rfind("J=", 0) == 0) {
          try {
            t.jitter = Duration::ns(std::stoll(extra.substr(2)));
          } catch (const std::exception&) {
            fail("malformed jitter attribute '" + extra + "'");
          }
        } else {
          fail("unknown task attribute '" + extra + "'");
        }
      }
      t.wcet = Duration::ns(wcet);
      t.bcet = Duration::ns(bcet);
      t.period = Duration::ns(period);
      t.offset = Duration::ns(offset);
      // Take the key before add_task consumes the task object: the RHS of
      // an assignment is sequenced before the subscript evaluation.
      const std::string name = t.name;
      by_name[name] = g.add_task(std::move(t));
    } else if (kind == "edge") {
      std::string from, to;
      if (!(ls >> from >> to)) fail("malformed edge line");
      int buffer = 1;
      ls >> buffer;  // optional
      const auto fi = by_name.find(from);
      const auto ti = by_name.find(to);
      if (fi == by_name.end()) fail("unknown task '" + from + "'");
      if (ti == by_name.end()) fail("unknown task '" + to + "'");
      if (buffer < 1) fail("buffer size must be >= 1");
      g.add_edge(fi->second, ti->second, ChannelSpec{buffer});
    } else if (kind == "policy") {
      EcuId ecu = kNoEcu;
      std::string pol;
      if (!(ls >> ecu >> pol)) fail("malformed policy line");
      if (ecu == kNoEcu) fail("policy: sources occupy no ECU");
      if (pol == "nonpreemptive") {
        g.set_policy(ecu, SchedPolicy::kNonPreemptive);
      } else if (pol == "preemptive") {
        g.set_policy(ecu, SchedPolicy::kPreemptive);
      } else if (pol == "edf") {
        g.set_policy(ecu, SchedPolicy::kEdf);
      } else {
        fail("unknown scheduling policy '" + pol + "'");
      }
    } else {
      fail("unknown directive '" + kind + "'");
    }
  }
  return g;
}

}  // namespace ceta
