#include "graph/task_graph.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <string>

#include "common/error.hpp"

namespace ceta {

TaskId TaskGraph::add_task(Task t) {
  const auto id = static_cast<TaskId>(tasks_.size());
  if (t.name.empty()) t.name = "task" + std::to_string(id);
  tasks_.push_back(std::move(t));
  succ_.emplace_back();
  pred_.emplace_back();
  return id;
}

void TaskGraph::add_edge(TaskId from, TaskId to, ChannelSpec spec) {
  CETA_EXPECTS(from < tasks_.size() && to < tasks_.size(),
               "add_edge: unknown task id");
  CETA_EXPECTS(from != to, "add_edge: self loops are not allowed");
  CETA_EXPECTS(!has_edge(from, to), "add_edge: duplicate edge");
  CETA_EXPECTS(spec.buffer_size >= 1, "add_edge: buffer size must be >= 1");
  edges_.push_back(Edge{from, to, spec});
  succ_[from].push_back(to);
  pred_[to].push_back(from);
}

void TaskGraph::remove_edge(TaskId from, TaskId to) {
  const std::size_t i = edge_index(from, to);
  CETA_EXPECTS(i != npos, "remove_edge: no such edge");
  edges_.erase(edges_.begin() + static_cast<std::ptrdiff_t>(i));
  auto& succ = succ_[from];
  succ.erase(std::find(succ.begin(), succ.end(), to));
  auto& pred = pred_[to];
  pred.erase(std::find(pred.begin(), pred.end(), from));
}

const Task& TaskGraph::task(TaskId id) const {
  CETA_EXPECTS(id < tasks_.size(), "task: unknown task id");
  return tasks_[id];
}

Task& TaskGraph::task(TaskId id) {
  CETA_EXPECTS(id < tasks_.size(), "task: unknown task id");
  return tasks_[id];
}

const std::vector<TaskId>& TaskGraph::successors(TaskId id) const {
  CETA_EXPECTS(id < tasks_.size(), "successors: unknown task id");
  return succ_[id];
}

const std::vector<TaskId>& TaskGraph::predecessors(TaskId id) const {
  CETA_EXPECTS(id < tasks_.size(), "predecessors: unknown task id");
  return pred_[id];
}

std::size_t TaskGraph::edge_index(TaskId from, TaskId to) const {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i].from == from && edges_[i].to == to) return i;
  }
  return npos;
}

bool TaskGraph::has_edge(TaskId from, TaskId to) const {
  return edge_index(from, to) != npos;
}

const ChannelSpec& TaskGraph::channel(TaskId from, TaskId to) const {
  const std::size_t i = edge_index(from, to);
  CETA_EXPECTS(i != npos, "channel: no such edge");
  return edges_[i].channel;
}

void TaskGraph::set_buffer_size(TaskId from, TaskId to, int size) {
  CETA_EXPECTS(size >= 1, "set_buffer_size: size must be >= 1");
  const std::size_t i = edge_index(from, to);
  CETA_EXPECTS(i != npos, "set_buffer_size: no such edge");
  edges_[i].channel.buffer_size = size;
}

std::vector<TaskId> TaskGraph::sources() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (pred_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<TaskId> TaskGraph::sinks() const {
  std::vector<TaskId> out;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (succ_[id].empty()) out.push_back(id);
  }
  return out;
}

std::vector<TaskId> TaskGraph::topological_order() const {
  std::vector<std::size_t> indeg(tasks_.size(), 0);
  for (const Edge& e : edges_) ++indeg[e.to];
  std::queue<TaskId> ready;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (indeg[id] == 0) ready.push(id);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (TaskId s : succ_[id]) {
      if (--indeg[s] == 0) ready.push(s);
    }
  }
  CETA_EXPECTS(order.size() == tasks_.size(),
               "topological_order: graph contains a cycle");
  return order;
}

bool TaskGraph::is_dag() const {
  try {
    (void)topological_order();
    return true;
  } catch (const PreconditionError&) {
    return false;
  }
}

bool TaskGraph::reaches(TaskId from, TaskId to) const {
  CETA_EXPECTS(from < tasks_.size() && to < tasks_.size(),
               "reaches: unknown task id");
  if (from == to) return true;
  std::vector<bool> seen(tasks_.size(), false);
  std::vector<TaskId> stack{from};
  seen[from] = true;
  while (!stack.empty()) {
    const TaskId v = stack.back();
    stack.pop_back();
    for (TaskId s : succ_[v]) {
      if (s == to) return true;
      if (!seen[s]) {
        seen[s] = true;
        stack.push_back(s);
      }
    }
  }
  return false;
}

SchedPolicy TaskGraph::policy(EcuId ecu) const {
  const auto it = std::lower_bound(
      policies_.begin(), policies_.end(), ecu,
      [](const std::pair<EcuId, SchedPolicy>& p, EcuId e) {
        return p.first < e;
      });
  if (it != policies_.end() && it->first == ecu) return it->second;
  return SchedPolicy::kNonPreemptive;
}

void TaskGraph::set_policy(EcuId ecu, SchedPolicy policy) {
  CETA_EXPECTS(ecu != kNoEcu, "set_policy: sources occupy no ECU");
  const auto it = std::lower_bound(
      policies_.begin(), policies_.end(), ecu,
      [](const std::pair<EcuId, SchedPolicy>& p, EcuId e) {
        return p.first < e;
      });
  const bool present = it != policies_.end() && it->first == ecu;
  if (policy == SchedPolicy::kNonPreemptive) {
    if (present) policies_.erase(it);
    return;
  }
  if (present) {
    it->second = policy;
  } else {
    policies_.insert(it, {ecu, policy});
  }
}

void TaskGraph::set_comm_semantics(CommSemantics comm) {
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (!pred_[id].empty()) tasks_[id].comm = comm;
  }
}

void TaskGraph::validate() const {
  CETA_EXPECTS(!tasks_.empty(), "validate: graph has no tasks");
  (void)topological_order();  // throws on a cycle
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    const Task& t = tasks_[id];
    validate_task(t);
    if (pred_[id].empty()) {
      CETA_EXPECTS(t.wcet == Duration::zero() && t.bcet == Duration::zero(),
                   "validate: source task '" + t.name +
                       "' must have zero execution time");
      CETA_EXPECTS(t.ecu == kNoEcu, "validate: source task '" + t.name +
                                        "' must not be mapped to an ECU");
    } else {
      CETA_EXPECTS(t.ecu != kNoEcu, "validate: non-source task '" + t.name +
                                        "' must be mapped to an ECU");
    }
  }
  // Unique priorities per ECU (total order required by fixed priority).
  std::set<std::pair<EcuId, int>> seen;
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    const Task& t = tasks_[id];
    if (t.ecu == kNoEcu) continue;
    const bool inserted = seen.insert({t.ecu, t.priority}).second;
    CETA_EXPECTS(inserted, "validate: duplicate priority " +
                               std::to_string(t.priority) + " on ECU " +
                               std::to_string(t.ecu));
  }
  for (const Edge& e : edges_) {
    CETA_EXPECTS(e.channel.buffer_size >= 1,
                 "validate: channel buffer size must be >= 1");
  }
}

}  // namespace ceta
