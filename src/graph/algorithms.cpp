#include "graph/algorithms.hpp"

#include "common/error.hpp"

namespace ceta {

namespace {

std::vector<TaskId> closure(const TaskGraph& g, TaskId start,
                            bool backwards) {
  CETA_EXPECTS(start < g.num_tasks(), "closure: unknown task id");
  std::vector<bool> seen(g.num_tasks(), false);
  std::vector<TaskId> stack{start};
  seen[start] = true;
  while (!stack.empty()) {
    const TaskId v = stack.back();
    stack.pop_back();
    const auto& next = backwards ? g.predecessors(v) : g.successors(v);
    for (TaskId n : next) {
      if (!seen[n]) {
        seen[n] = true;
        stack.push_back(n);
      }
    }
  }
  std::vector<TaskId> out;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (seen[id]) out.push_back(id);
  }
  return out;
}

}  // namespace

std::vector<TaskId> ancestors(const TaskGraph& g, TaskId task) {
  return closure(g, task, /*backwards=*/true);
}

std::vector<TaskId> descendants(const TaskGraph& g, TaskId task) {
  return closure(g, task, /*backwards=*/false);
}

SubgraphExtract ancestor_subgraph(const TaskGraph& g, TaskId task) {
  SubgraphExtract out;
  out.to_original = ancestors(g, task);
  out.from_original.assign(g.num_tasks(), kNoTask);
  for (std::size_t i = 0; i < out.to_original.size(); ++i) {
    out.from_original[out.to_original[i]] = static_cast<TaskId>(i);
  }
  for (TaskId orig : out.to_original) {
    out.graph.add_task(g.task(orig));
  }
  for (const Edge& e : g.edges()) {
    const TaskId f = out.from_original[e.from];
    const TaskId t = out.from_original[e.to];
    if (f != kNoTask && t != kNoTask) {
      out.graph.add_edge(f, t, e.channel);
    }
  }
  return out;
}

std::vector<Duration> map_response_times(const SubgraphExtract& sub,
                                         const std::vector<Duration>& rtm) {
  CETA_EXPECTS(rtm.size() == sub.from_original.size(),
               "map_response_times: response-time map size mismatch");
  std::vector<Duration> out;
  out.reserve(sub.to_original.size());
  for (TaskId orig : sub.to_original) {
    out.push_back(rtm[orig]);
  }
  return out;
}

}  // namespace ceta
