#include "graph/task.hpp"

#include "common/error.hpp"

namespace ceta {

void validate_task(const Task& t) {
  CETA_EXPECTS(t.period > Duration::zero(),
               "task '" + t.name + "': period must be positive");
  CETA_EXPECTS(t.bcet >= Duration::zero(),
               "task '" + t.name + "': BCET must be non-negative");
  CETA_EXPECTS(t.bcet <= t.wcet,
               "task '" + t.name + "': BCET must not exceed WCET");
  CETA_EXPECTS(t.offset >= Duration::zero() && t.offset < t.period,
               "task '" + t.name + "': offset must lie in [0, period)");
  CETA_EXPECTS(t.jitter >= Duration::zero() && t.jitter < t.period,
               "task '" + t.name + "': jitter must lie in [0, period)");
  CETA_EXPECTS(t.jitter == Duration::zero() ||
                   t.comm != CommSemantics::kLet,
               "task '" + t.name +
                   "': LET tasks are time-triggered and must be jitter-free");
}

}  // namespace ceta
