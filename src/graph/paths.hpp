// Path (cause-effect chain) enumeration.
//
// A cause-effect chain is a path in the graph (§II-A).  The disparity
// analysis needs the set P of all chains that start at a source task and
// end at the analyzed task (§III).  Dense DAGs can have exponentially many
// paths, so enumeration takes an explicit cap and fails loudly instead of
// silently truncating.

#pragma once

#include <cstddef>
#include <vector>

#include "graph/task_graph.hpp"

namespace ceta {

/// A path through the graph: consecutive elements are connected by edges.
using Path = std::vector<TaskId>;

/// Default cap on the number of enumerated paths.
inline constexpr std::size_t kDefaultPathCap = 20'000;

/// All paths from any source task of `g` to `target`, each beginning at a
/// source and ending at `target`.  If `target` is itself a source, returns
/// the singleton path {target}.  Throws CapacityError if more than `cap`
/// paths exist.
std::vector<Path> enumerate_source_chains(const TaskGraph& g, TaskId target,
                                          std::size_t cap = kDefaultPathCap);

/// All paths from `from` to `to` (inclusive); empty if unreachable.
std::vector<Path> enumerate_paths(const TaskGraph& g, TaskId from, TaskId to,
                                  std::size_t cap = kDefaultPathCap);

/// Number of source→target paths, computed by dynamic programming without
/// enumeration (saturates at SIZE_MAX on overflow).
std::size_t count_source_chains(const TaskGraph& g, TaskId target);

/// Result of count_source_chains_checked: the (saturating) path count plus
/// an explicit overflow signal.  On 10⁴-task dense DAGs the true count can
/// exceed SIZE_MAX; `saturated` lets backend selection distinguish "exactly
/// SIZE_MAX chains" (never happens in practice) from "too many to count",
/// instead of silently comparing a wrapped/clamped number against a cap.
struct ChainCount {
  std::size_t count = 0;
  bool saturated = false;

  /// True when the (possibly saturated) count exceeds `cap` — i.e. the
  /// chain set is not enumerable under that cap.
  bool exceeds(std::size_t cap) const { return saturated || count > cap; }
};

/// Overflow-safe variant of count_source_chains: identical DP, but reports
/// whether any per-task count (not just the target's) saturated, so a
/// wrapped intermediate cannot mis-route backend selection.
ChainCount count_source_chains_checked(const TaskGraph& g, TaskId target);

/// True if `p` is a path of `g` (each consecutive pair is an edge).
bool is_path(const TaskGraph& g, const Path& p);

/// The tasks common to both paths, in order of appearance (both paths list
/// them in the same relative order since the graph is a DAG).  Throws
/// PreconditionError if the common tasks appear in inconsistent order.
std::vector<TaskId> common_tasks(const Path& a, const Path& b);

}  // namespace ceta
