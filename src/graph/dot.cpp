#include "graph/dot.hpp"

#include <sstream>

namespace ceta {

std::string to_dot(const TaskGraph& g) {
  std::ostringstream os;
  os << "digraph cause_effect {\n";
  os << "  rankdir=LR;\n";
  os << "  node [shape=box];\n";
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const Task& t = g.task(id);
    os << "  n" << id << " [label=\"" << t.name << "\\n(W=" << to_string(t.wcet)
       << ", B=" << to_string(t.bcet) << ", T=" << to_string(t.period) << ")";
    if (t.ecu != kNoEcu) {
      os << "\\necu=" << t.ecu << " prio=" << t.priority;
    }
    os << "\"";
    if (g.is_source(id)) os << " style=filled fillcolor=lightblue";
    if (g.is_sink(id)) os << " style=filled fillcolor=lightyellow";
    os << "];\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  n" << e.from << " -> n" << e.to;
    if (e.channel.buffer_size > 1) {
      os << " [label=\"buf=" << e.channel.buffer_size << "\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ceta
