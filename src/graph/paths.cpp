#include "graph/paths.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ceta {

namespace {

/// Depth-first enumeration of all paths ending at `target`, growing
/// backwards from the target so only productive prefixes are explored.
void enumerate_backwards(const TaskGraph& g, TaskId target,
                         const std::vector<bool>& admissible_start,
                         std::size_t cap, Path& suffix,
                         std::vector<Path>& out) {
  const TaskId head = suffix.back();
  if (admissible_start[head]) {
    if (out.size() >= cap) {
      throw CapacityError("path enumeration exceeded cap of " +
                          std::to_string(cap));
    }
    Path p(suffix.rbegin(), suffix.rend());
    out.push_back(std::move(p));
  }
  for (TaskId pred : g.predecessors(head)) {
    suffix.push_back(pred);
    enumerate_backwards(g, target, admissible_start, cap, suffix, out);
    suffix.pop_back();
  }
}

}  // namespace

std::vector<Path> enumerate_source_chains(const TaskGraph& g, TaskId target,
                                          std::size_t cap) {
  CETA_EXPECTS(target < g.num_tasks(), "enumerate_source_chains: bad target");
  obs::Span span("graph", "enumerate_source_chains");
  span.arg("target", static_cast<std::int64_t>(target));
  static obs::Counter& runs =
      obs::MetricsRegistry::global().counter("graph.enumerations");
  runs.add();
  std::vector<bool> is_src(g.num_tasks(), false);
  for (TaskId s : g.sources()) is_src[s] = true;
  std::vector<Path> out;
  // The DP count is O(V+E) and exact (saturating), so size the output
  // once instead of growing it through the enumeration.
  out.reserve(std::min(count_source_chains(g, target), cap));
  Path suffix{target};
  enumerate_backwards(g, target, is_src, cap, suffix, out);
  span.arg("chains", static_cast<std::int64_t>(out.size()));
  return out;
}

std::vector<Path> enumerate_paths(const TaskGraph& g, TaskId from, TaskId to,
                                  std::size_t cap) {
  CETA_EXPECTS(from < g.num_tasks() && to < g.num_tasks(),
               "enumerate_paths: bad endpoints");
  obs::Span span("graph", "enumerate_paths");
  span.arg("from", static_cast<std::int64_t>(from));
  span.arg("to", static_cast<std::int64_t>(to));
  std::vector<bool> admissible(g.num_tasks(), false);
  admissible[from] = true;
  std::vector<Path> out;
  Path suffix{to};
  enumerate_backwards(g, to, admissible, cap, suffix, out);
  return out;
}

std::size_t count_source_chains(const TaskGraph& g, TaskId target) {
  return count_source_chains_checked(g, target).count;
}

ChainCount count_source_chains_checked(const TaskGraph& g, TaskId target) {
  CETA_EXPECTS(target < g.num_tasks(),
               "count_source_chains_checked: bad target");
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> count(g.num_tasks(), 0);
  // sat[id] records whether count[id] is a saturated lower bound rather
  // than the exact path count — either its own sum overflowed or any
  // predecessor contribution was already saturated.
  std::vector<bool> sat(g.num_tasks(), false);
  for (TaskId id : g.topological_order()) {
    if (g.is_source(id)) {
      count[id] = 1;
      continue;
    }
    std::size_t total = 0;
    bool saturated = false;
    for (TaskId p : g.predecessors(id)) {
      if (sat[p]) saturated = true;
      if (count[p] > kMax - total) {
        total = kMax;
        saturated = true;
        break;
      }
      total += count[p];
    }
    count[id] = saturated ? kMax : total;
    sat[id] = saturated;
  }
  return ChainCount{count[target], sat[target]};
}

bool is_path(const TaskGraph& g, const Path& p) {
  if (p.empty()) return false;
  for (TaskId id : p) {
    if (id >= g.num_tasks()) return false;
  }
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    if (!g.has_edge(p[i], p[i + 1])) return false;
  }
  return true;
}

std::vector<TaskId> common_tasks(const Path& a, const Path& b) {
  // One mark pass, O(|a|+|b|): record each b-task's position, then scan a.
  // The position doubles as the order-consistency check: the shared tasks
  // must appear at strictly increasing b-positions (guaranteed for paths
  // of a DAG; guards against malformed inputs).
  constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();
  TaskId max_id = 0;
  for (TaskId y : b) max_id = std::max(max_id, y);
  std::vector<std::size_t> pos_in_b(static_cast<std::size_t>(max_id) + 1,
                                    kNoPos);
  for (std::size_t i = 0; i < b.size(); ++i) pos_in_b[b[i]] = i;
  std::vector<TaskId> out;
  std::size_t prev = kNoPos;
  for (TaskId t : a) {
    if (t > max_id || pos_in_b[t] == kNoPos) continue;
    const std::size_t pos = pos_in_b[t];
    CETA_EXPECTS(prev == kNoPos || pos > prev,
                 "common_tasks: inconsistent order of shared tasks");
    out.push_back(t);
    prev = pos;
  }
  return out;
}

}  // namespace ceta
