// Random topology generators (evaluation §V).
//
// The paper generates cause-effect graphs with NetworkX's
// dense_gnm_random_graph and forces a single sink.  `gnm_random_dag`
// mirrors that: it samples exactly m distinct vertex pairs uniformly among
// the n(n-1)/2 possible ones, orients each edge from the lower to the
// higher vertex index (yielding a DAG), and then redirects every sink other
// than the last vertex into the last vertex so the graph has one sink.
//
// For Fig 6(c)/(d) the paper merges two independent chains at a shared
// sink; `merge_chains_at_sink` builds that topology.
//
// Generators produce *topology only* (default task parameters); workload
// parameters are assigned separately (see waters/generator.hpp).

#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "graph/task_graph.hpp"

namespace ceta {

struct GnmDagOptions {
  std::size_t num_tasks = 10;
  /// Number of sampled edges before single-sink repair; if 0, defaults to
  /// floor(1.5 * num_tasks) clamped to the maximum possible.
  std::size_t num_edges = 0;
};

/// Random single-sink DAG in the G(n, m) family.  The last vertex
/// (id = n-1) is the unique sink.  Throws PreconditionError for n < 2 or
/// m > n(n-1)/2.
TaskGraph gnm_random_dag(const GnmDagOptions& opt, Rng& rng);

/// Two disjoint chains of the given lengths (number of tasks per chain,
/// counting the shared sink), merged at a single common sink task.  The
/// first chain occupies ids [0, len_a-1), the second ids
/// [len_a-1, len_a+len_b-2), and the sink is the last id.  Each chain's
/// first task is a source.  Requires len_a, len_b >= 2.
TaskGraph merge_chains_at_sink(std::size_t len_a, std::size_t len_b);

/// A layered fork-join pipeline: `num_sensors` source tasks fan into one
/// fusion task through per-sensor processing chains of `stage_count`
/// intermediate tasks.  Used by examples.  Requires num_sensors >= 1.
TaskGraph sensor_fusion_pipeline(std::size_t num_sensors,
                                 std::size_t stage_count);

struct FunnelDagOptions {
  std::size_t num_tasks = 10;
  /// Fraction of tasks forming the shared tail pipeline (paper Fig. 1:
  /// parallel sensing/perception funnelling into planning → control).
  double pipeline_fraction = 0.4;
  /// Edges sampled among the front (parallel) part; 0 = 1.5x front size.
  std::size_t front_edges = 0;
};

/// Random single-sink DAG in the shape of the paper's Fig. 1: a random
/// G(n, m) front of parallel sensor/processing tasks whose sinks all
/// funnel into one shared tail pipeline ending at the single sink.  Every
/// pair of source chains shares the tail suffix, the configuration where
/// the fork-join analysis (Theorem 2 + last-joint truncation) visibly
/// beats Theorem 1.  Requires num_tasks >= 4.
TaskGraph funnel_random_dag(const FunnelDagOptions& opt, Rng& rng);

}  // namespace ceta
