#include "graph/generator.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace ceta {

TaskGraph gnm_random_dag(const GnmDagOptions& opt, Rng& rng) {
  const std::size_t n = opt.num_tasks;
  CETA_EXPECTS(n >= 2, "gnm_random_dag: need at least two tasks");
  const std::size_t max_edges = n * (n - 1) / 2;
  std::size_t m = opt.num_edges;
  if (m == 0) m = std::min(max_edges, (3 * n) / 2);
  CETA_EXPECTS(m <= max_edges, "gnm_random_dag: too many edges requested");

  TaskGraph g;
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.name = "t" + std::to_string(i);
    g.add_task(std::move(t));
  }

  // Uniformly sample m distinct unordered pairs out of the n(n-1)/2
  // possible, exactly like dense_gnm_random_graph; orient low -> high.
  const std::vector<std::size_t> picks =
      rng.sample_without_replacement(max_edges, m);
  for (std::size_t code : picks) {
    // Decode pair index `code` into (i, j), i < j, row-major over i.
    std::size_t i = 0;
    std::size_t remaining = code;
    std::size_t row = n - 1;
    while (remaining >= row) {
      remaining -= row;
      ++i;
      --row;
    }
    const std::size_t j = i + 1 + remaining;
    g.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(j));
  }

  // Single-sink repair: every sink other than the last vertex gets an edge
  // into the last vertex (mirrors the paper's "generated with a single
  // sink task").
  const auto last = static_cast<TaskId>(n - 1);
  for (TaskId id = 0; id < last; ++id) {
    if (g.successors(id).empty()) g.add_edge(id, last);
  }
  CETA_ASSERT(g.sinks().size() == 1 && g.sinks().front() == last,
              "gnm_random_dag: single-sink repair failed");
  return g;
}

TaskGraph funnel_random_dag(const FunnelDagOptions& opt, Rng& rng) {
  CETA_EXPECTS(opt.num_tasks >= 4, "funnel_random_dag: need >= 4 tasks");
  CETA_EXPECTS(opt.pipeline_fraction > 0.0 && opt.pipeline_fraction < 1.0,
               "funnel_random_dag: pipeline fraction must be in (0, 1)");
  const auto pipeline_len = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             static_cast<double>(opt.num_tasks) * opt.pipeline_fraction));
  const std::size_t front = opt.num_tasks - pipeline_len;
  CETA_EXPECTS(front >= 2, "funnel_random_dag: front part too small");

  // Random parallel front (no single-sink repair: the pipeline is the
  // funnel) built with the same uniform edge sampling as gnm_random_dag.
  TaskGraph g;
  for (std::size_t i = 0; i < opt.num_tasks; ++i) {
    Task t;
    t.name = "t" + std::to_string(i);
    g.add_task(std::move(t));
  }
  const std::size_t max_front_edges = front * (front - 1) / 2;
  std::size_t m = opt.front_edges;
  if (m == 0) m = std::min(max_front_edges, (3 * front) / 2);
  CETA_EXPECTS(m <= max_front_edges,
               "funnel_random_dag: too many front edges");
  for (std::size_t code : rng.sample_without_replacement(max_front_edges, m)) {
    std::size_t i = 0;
    std::size_t remaining = code;
    std::size_t row = front - 1;
    while (remaining >= row) {
      remaining -= row;
      ++i;
      --row;
    }
    const std::size_t j = i + 1 + remaining;
    g.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(j));
  }

  // Funnel every front sink into the pipeline head; chain the pipeline.
  const auto pipe_head = static_cast<TaskId>(front);
  for (TaskId id = 0; id < pipe_head; ++id) {
    if (g.successors(id).empty()) g.add_edge(id, pipe_head);
  }
  for (std::size_t i = front; i + 1 < opt.num_tasks; ++i) {
    g.add_edge(static_cast<TaskId>(i), static_cast<TaskId>(i + 1));
  }
  CETA_ASSERT(g.sinks().size() == 1, "funnel_random_dag: not single-sink");
  return g;
}

TaskGraph merge_chains_at_sink(std::size_t len_a, std::size_t len_b) {
  CETA_EXPECTS(len_a >= 2 && len_b >= 2,
               "merge_chains_at_sink: chains need at least two tasks");
  TaskGraph g;
  std::vector<TaskId> a, b;
  for (std::size_t i = 0; i + 1 < len_a; ++i) {
    Task t;
    t.name = "a" + std::to_string(i);
    a.push_back(g.add_task(std::move(t)));
  }
  for (std::size_t i = 0; i + 1 < len_b; ++i) {
    Task t;
    t.name = "b" + std::to_string(i);
    b.push_back(g.add_task(std::move(t)));
  }
  Task sink;
  sink.name = "sink";
  const TaskId sink_id = g.add_task(std::move(sink));
  for (std::size_t i = 0; i + 1 < a.size(); ++i) g.add_edge(a[i], a[i + 1]);
  for (std::size_t i = 0; i + 1 < b.size(); ++i) g.add_edge(b[i], b[i + 1]);
  g.add_edge(a.back(), sink_id);
  g.add_edge(b.back(), sink_id);
  return g;
}

TaskGraph sensor_fusion_pipeline(std::size_t num_sensors,
                                 std::size_t stage_count) {
  CETA_EXPECTS(num_sensors >= 1, "sensor_fusion_pipeline: need a sensor");
  TaskGraph g;
  Task fusion;
  fusion.name = "fusion";
  std::vector<TaskId> tails;
  for (std::size_t s = 0; s < num_sensors; ++s) {
    Task sensor;
    sensor.name = "sensor" + std::to_string(s);
    TaskId prev = g.add_task(std::move(sensor));
    for (std::size_t k = 0; k < stage_count; ++k) {
      Task stage;
      stage.name = "proc" + std::to_string(s) + "_" + std::to_string(k);
      const TaskId cur = g.add_task(std::move(stage));
      g.add_edge(prev, cur);
      prev = cur;
    }
    tails.push_back(prev);
  }
  const TaskId fusion_id = g.add_task(std::move(fusion));
  for (TaskId t : tails) g.add_edge(t, fusion_id);
  return g;
}

}  // namespace ceta
