// The cause-effect graph G = <V, E> of §II-A.
//
// Vertices are periodic tasks; a directed edge (τi, τj) is the input
// channel of τj / output channel of τi.  Channels follow the implicit
// communication semantics of AUTOSAR: a job reads all its input channels
// when it starts and writes all its output channels when it finishes.  By
// default each channel is a size-1 overwrite register; the optimization of
// §IV generalizes a channel to a FIFO of the last n tokens (Lemma 6),
// where jobs read the *oldest* buffered token.

#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/task.hpp"

namespace ceta {

/// Per-edge communication channel configuration.
struct ChannelSpec {
  /// FIFO depth; 1 is the plain overwrite register of the base model.
  int buffer_size = 1;
};

struct Edge {
  TaskId from = 0;
  TaskId to = 0;
  ChannelSpec channel;
};

class TaskGraph {
 public:
  TaskGraph() = default;

  /// Add a task; returns its id (ids are dense, 0-based).
  TaskId add_task(Task t);

  /// Add an edge with an optional channel spec.  Throws on unknown ids,
  /// self loops and duplicate edges.  Acyclicity is checked by validate().
  void add_edge(TaskId from, TaskId to, ChannelSpec spec = {});

  /// Remove an existing edge (throws PreconditionError if absent).  The
  /// relative order of the remaining edges, successors and predecessors is
  /// preserved, so enumeration orders stay stable.  Note the structural
  /// classification of `to` may change (it becomes a source when this was
  /// its last inbound edge) — validate() then enforces the source
  /// parameter rules.  O(E).
  void remove_edge(TaskId from, TaskId to);

  std::size_t num_tasks() const { return tasks_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  const Task& task(TaskId id) const;
  Task& task(TaskId id);

  const std::vector<Edge>& edges() const { return edges_; }

  /// Direct successors / predecessors, in insertion order.
  const std::vector<TaskId>& successors(TaskId id) const;
  const std::vector<TaskId>& predecessors(TaskId id) const;

  bool has_edge(TaskId from, TaskId to) const;

  /// Channel spec of an existing edge; throws if the edge does not exist.
  const ChannelSpec& channel(TaskId from, TaskId to) const;
  void set_buffer_size(TaskId from, TaskId to, int size);

  /// Tasks with no incoming / outgoing edges.
  std::vector<TaskId> sources() const;
  std::vector<TaskId> sinks() const;

  bool is_source(TaskId id) const { return predecessors(id).empty(); }
  bool is_sink(TaskId id) const { return successors(id).empty(); }

  /// A topological order of all tasks; throws PreconditionError if the
  /// graph has a cycle.
  std::vector<TaskId> topological_order() const;

  bool is_dag() const;

  /// True if `to` is reachable from `from` via directed edges (reflexive).
  bool reaches(TaskId from, TaskId to) const;

  /// Set the communication discipline of every non-source task.
  void set_comm_semantics(CommSemantics comm);

  /// Dispatching discipline of `ecu`; kNonPreemptive unless overridden.
  /// Any EcuId (even one no task currently uses) may be queried; kNoEcu
  /// reports kNonPreemptive (sources never contend).
  SchedPolicy policy(EcuId ecu) const;

  /// Override the dispatching discipline of `ecu`.  Setting the default
  /// (kNonPreemptive) erases the override, so graphs that never leave the
  /// paper's platform model serialize byte-identically to before the
  /// policy axis existed.  Throws PreconditionError on kNoEcu.
  void set_policy(EcuId ecu, SchedPolicy policy);

  /// Non-default per-ECU policy overrides, sorted by EcuId (the canonical
  /// serialization order).
  const std::vector<std::pair<EcuId, SchedPolicy>>& policies() const {
    return policies_;
  }

  /// Full structural + parameter validation (paper §II-A):
  ///  - graph is a DAG,
  ///  - every task's parameters are sane (validate_task),
  ///  - source tasks have WCET = BCET = 0 and ecu == kNoEcu,
  ///  - non-source tasks are mapped to an ECU,
  ///  - priorities are unique among tasks sharing an ECU,
  ///  - channel buffer sizes are >= 1.
  /// Throws PreconditionError describing the first violation.
  void validate() const;

 private:
  std::size_t edge_index(TaskId from, TaskId to) const;  // npos if absent

  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  /// Sorted non-default per-ECU policy overrides; absent means
  /// kNonPreemptive.
  std::vector<std::pair<EcuId, SchedPolicy>> policies_;
  std::vector<std::vector<TaskId>> succ_;
  std::vector<std::vector<TaskId>> pred_;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace ceta
