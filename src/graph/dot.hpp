// Graphviz DOT export for cause-effect graphs (debugging / documentation).

#pragma once

#include <string>

#include "graph/task_graph.hpp"

namespace ceta {

/// Render the graph in DOT format.  Node labels carry name, (W, B, T), ECU
/// and priority; edges with buffered channels are annotated with the
/// buffer size.
std::string to_dot(const TaskGraph& g);

}  // namespace ceta
