// Structural utilities on cause-effect graphs.
//
// `ancestor_subgraph` extracts the ancestor closure of an analyzed task:
// the time disparity of a task depends only on its ancestors, so on large
// system graphs the analysis can run on the (much smaller) closure.  The
// caller must keep using response times computed on the *full* graph —
// scheduling interference does not respect the data-flow cut — which is
// why the result carries id maps instead of re-deriving anything.

#pragma once

#include <limits>
#include <vector>

#include "graph/task_graph.hpp"

namespace ceta {

/// Marker for "not part of the subgraph" in id maps.
inline constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

/// All tasks with a directed path to `task`, including `task` itself, in
/// ascending id order.
std::vector<TaskId> ancestors(const TaskGraph& g, TaskId task);

/// All tasks reachable from `task`, including `task`, ascending.
std::vector<TaskId> descendants(const TaskGraph& g, TaskId task);

struct SubgraphExtract {
  TaskGraph graph;
  /// Subgraph id -> original id.
  std::vector<TaskId> to_original;
  /// Original id -> subgraph id, kNoTask for excluded tasks.
  std::vector<TaskId> from_original;
};

/// Induced subgraph on the ancestor closure of `task` (tasks, parameters
/// and channel specs copied verbatim; edges among ancestors only).
SubgraphExtract ancestor_subgraph(const TaskGraph& g, TaskId task);

/// Map a response-time vector of the original graph onto a subgraph.
std::vector<Duration> map_response_times(const SubgraphExtract& sub,
                                         const std::vector<Duration>& rtm);

}  // namespace ceta
