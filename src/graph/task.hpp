// The periodic task model of the paper (§II-A).
//
// Each vertex of the cause-effect graph is a task characterized by
// (WCET, BCET, period); at run time it releases jobs periodically with an
// arbitrary release offset.  Tasks are statically mapped to ECUs and
// scheduled by a non-preemptive fixed-priority scheduler per ECU.  Source
// tasks (no incoming edges) model sensors: WCET = BCET = 0 and each output
// token carries the job's release time as its timestamp.

#pragma once

#include <cstdint>
#include <string>

#include "common/time.hpp"

namespace ceta {

/// Index of a task inside its TaskGraph.
using TaskId = std::uint32_t;

/// Identifier of an execution resource (ECU or bus).  Tasks mapped to the
/// same resource contend under non-preemptive fixed priority.
using EcuId = std::int32_t;

/// Source tasks are external stimuli and occupy no ECU.
inline constexpr EcuId kNoEcu = -1;

/// Per-ECU dispatching discipline.  The paper's model (and every bound
/// derived in §III) assumes kNonPreemptive; the other two are the RTA
/// variants of ROADMAP item 4, each differentially verified against the
/// preemptive simulator.  Stored per ECU on the TaskGraph (policy()/
/// set_policy()) so a single system may mix semantics across ECUs.
enum class SchedPolicy {
  /// Non-preemptive fixed priority: a dispatched job runs to completion;
  /// lower-priority jobs block at most once (the paper's platform model).
  kNonPreemptive,
  /// Preemptive fixed priority: a newly released higher-priority job
  /// preempts the running job immediately (classic busy-window RTA).
  kPreemptive,
  /// Preemptive earliest-deadline-first with implicit deadlines (D = T):
  /// the ready job with the earliest absolute deadline runs; priorities
  /// still order tie-breaks and stay unique per ECU, but do not gate
  /// dispatch.  Response bounds come from processor-demand analysis.
  kEdf,
};

/// Communication discipline of a task's I/O.
enum class CommSemantics {
  /// AUTOSAR implicit communication (§II-B): read all inputs when the job
  /// *starts* executing, write outputs when it *finishes*.
  kImplicit,
  /// Logical Execution Time: read inputs at the job's *release*, publish
  /// outputs at its *deadline* (release + period).  Data timing becomes
  /// independent of scheduling and execution times (fully deterministic),
  /// at the cost of one extra period of latency per hop.  Requires the
  /// task to be schedulable (R <= T) for the publish instant to be met.
  kLet,
};

struct Task {
  std::string name;

  /// Worst-case execution time W(τ).
  Duration wcet = Duration::zero();
  /// Best-case execution time B(τ); 0 <= bcet <= wcet.
  Duration bcet = Duration::zero();
  /// Period T(τ); must be positive.
  Duration period = Duration::ms(10);
  /// Release offset of the first job relative to system start; in [0, T).
  Duration offset = Duration::zero();

  /// Maximum release jitter: job k is released within
  /// [offset + k·T, offset + k·T + jitter].  Must be < period (so releases
  /// stay ordered); 0 recovers the strictly periodic model of the paper.
  /// Jitter approximates sporadic activations (Dürr et al. [5]).
  Duration jitter = Duration::zero();

  /// Fixed priority; *smaller value means higher priority*.  Must be unique
  /// among tasks mapped to the same ECU.
  int priority = 0;

  /// Execution resource; kNoEcu for source tasks.
  EcuId ecu = kNoEcu;

  /// I/O discipline; ignored for source tasks (they publish their sample
  /// instantly at release either way).
  CommSemantics comm = CommSemantics::kImplicit;
};

/// True if `hp` has higher priority than `lo` under the convention above.
constexpr bool higher_priority(const Task& hp, const Task& lo) {
  return hp.priority < lo.priority;
}

/// Validate per-task parameter sanity; throws PreconditionError.
void validate_task(const Task& t);

}  // namespace ceta
