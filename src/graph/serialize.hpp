// Plain-text (de)serialization of cause-effect graphs.
//
// Line-oriented format, stable for fixtures and round-trip testing:
//
//   # comment / blank lines ignored
//   task <name> <wcet_ns> <bcet_ns> <period_ns> <offset_ns> <prio> <ecu>
//        [implicit|let] [J=<jitter_ns>]   (same line, optional attributes)
//   edge <from_name> <to_name> [buffer_size]
//
// Task ids are assigned in declaration order; edges refer to tasks by name.

#pragma once

#include <iosfwd>
#include <string>

#include "graph/task_graph.hpp"

namespace ceta {

/// Serialize to the text format above.
std::string to_text(const TaskGraph& g);

/// Parse the text format; throws PreconditionError with a line number on
/// malformed input, unknown task names or duplicate definitions.
TaskGraph graph_from_text(const std::string& text);

}  // namespace ceta
