// Critical-chain identification: which source chain dominates a task's
// worst-case data staleness.
//
// The chain to `task` maximizing the WCBT bound W(π) is the one a designer
// should attack first (shorten periods, co-locate hops, or buffer the
// *other* chains to align windows, §IV).  Computed by dynamic programming
// over the DAG in O(V + E) — no chain enumeration.

#pragma once

#include "chain/backward_bounds.hpp"
#include "graph/paths.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

struct CriticalChain {
  /// A source→task chain attaining the maximum WCBT bound.
  Path chain;
  /// Its W(π) (Lemma 4 / Lemma 6 aware, like wcbt_bound).
  Duration wcbt;
};

/// The chain with the largest WCBT bound among all source chains to
/// `task`; `task` itself if it is a source (wcbt = 0).
CriticalChain critical_chain(const TaskGraph& g, TaskId task,
                             const ResponseTimeMap& rtm,
                             HopBoundMethod method =
                                 HopBoundMethod::kNonPreemptive);

}  // namespace ceta
