#include "chain/backward_bounds.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ceta {

namespace {

void check_chain(const TaskGraph& g, const Path& chain,
                 const ResponseTimeMap& rtm) {
  CETA_EXPECTS(!chain.empty(), "backward bounds: empty chain");
  CETA_EXPECTS(rtm.size() == g.num_tasks(),
               "backward bounds: response-time map size mismatch");
  CETA_EXPECTS(is_path(g, chain), "backward bounds: not a path of the graph");
  for (TaskId id : chain) {
    CETA_EXPECTS(rtm[id] != Duration::max(),
                 "backward bounds: task '" + g.task(id).name +
                     "' has no finite WCRT (unschedulable?)");
  }
}

}  // namespace

// Σ (buf_i − 1)·T(π^i), with the producer's release jitter widening the
// window by ±J (the n−1 release gaps telescope to (n−1)T ± J).  For the
// head channel this is Lemma 6; the same sliding-window argument applies
// hop-wise (each producer emits one token per period, and consumers read
// the oldest of the last n).
Duration fifo_shift_upper(const TaskGraph& g, const Path& chain) {
  Duration shift = Duration::zero();
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const int n = g.channel(chain[i], chain[i + 1]).buffer_size;
    if (n > 1) {
      shift += g.task(chain[i]).period * (n - 1) + g.task(chain[i]).jitter;
    }
  }
  return shift;
}

Duration fifo_shift_lower(const TaskGraph& g, const Path& chain) {
  Duration shift = Duration::zero();
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const int n = g.channel(chain[i], chain[i + 1]).buffer_size;
    if (n > 1) {
      shift += g.task(chain[i]).period * (n - 1) - g.task(chain[i]).jitter;
    }
  }
  return shift;
}

Duration hop_bound(const TaskGraph& g, TaskId from, TaskId to,
                   const ResponseTimeMap& rtm, HopBoundMethod method) {
  CETA_EXPECTS(g.has_edge(from, to), "hop_bound: no such edge");
  obs::Span span("chain", "hop_bound");
  span.arg("from", static_cast<std::int64_t>(from));
  span.arg("to", static_cast<std::int64_t>(to));
  static obs::Counter& computed =
      obs::MetricsRegistry::global().counter("chain.hop_bounds.computed");
  computed.add();
  const Task& u = g.task(from);
  const Task& v = g.task(to);
  const Duration R = rtm.at(from);

  // LET producer: the token read at time t was published at the producer's
  // deadline p <= t with p > t − T, so r = p − T > t − 2T.  Holds for both
  // read disciplines of the consumer (reads never happen before release).
  if (!g.is_source(from) && u.comm == CommSemantics::kLet) {
    return u.period * 2;
  }

  if (method == HopBoundMethod::kSchedulingAgnostic) {
    return u.period + R;
  }

  // Lemma 4.  Source tasks live on no ECU, so a source hop takes the
  // different-ECU branch and (with R(source) = 0) contributes exactly T
  // plus the source's release jitter (R of a jittered source is J).
  // The same-ECU refinements reason about the consumer's *start* time and
  // strict periodicity, so they require an implicit, jitter-free pair
  // (LET consumers read at release).
  if (g.is_source(from)) {
    return u.period + u.jitter;
  }
  const bool same_ecu = u.ecu != kNoEcu && u.ecu == v.ecu;
  if (!same_ecu || v.comm == CommSemantics::kLet ||
      u.jitter > Duration::zero() || v.jitter > Duration::zero()) {
    return u.period + R;
  }
  // Same-ECU refinements are routed by the ECU's dispatching discipline:
  //  * kEdf: priorities do not order dispatch at all, so neither
  //    refinement applies — fall back to θ = T + R.
  //  * kPreemptive: the higher-priority-producer case still gives θ = T.
  //    When the consumer is first dispatched at s, no same-ECU
  //    higher-priority job is ready or running, so every producer job
  //    released <= s — in particular the one released in (s − T, s] —
  //    has finished and written.  The lower-priority-producer refinement
  //    relies on non-preemptive blocking and drops to θ = T + R.
  //  * kNonPreemptive: Lemma 4 verbatim.
  const SchedPolicy policy = g.policy(u.ecu);
  if (policy == SchedPolicy::kEdf) {
    return u.period + R;
  }
  if (higher_priority(u, v)) {
    return u.period;
  }
  if (policy == SchedPolicy::kPreemptive) {
    return u.period + R;
  }
  return u.period + R - (u.wcet + v.bcet);
}

Duration wcbt_bound(const TaskGraph& g, const Path& chain,
                    const ResponseTimeMap& rtm, HopBoundMethod method) {
  obs::Span span("chain", "wcbt_bound");
  span.arg("len", static_cast<std::int64_t>(chain.size()));
  check_chain(g, chain, rtm);
  // A one-task chain's immediate backward job chain is the job itself:
  // len = 0 exactly.
  if (chain.size() == 1) return Duration::zero();
  Duration total = Duration::zero();
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    total += hop_bound(g, chain[i], chain[i + 1], rtm, method);
  }
  return total + fifo_shift_upper(g, chain);
}

Duration bcbt_bound(const TaskGraph& g, const Path& chain,
                    const ResponseTimeMap& rtm) {
  obs::Span span("chain", "bcbt_bound");
  span.arg("len", static_cast<std::int64_t>(chain.size()));
  check_chain(g, chain, rtm);
  if (chain.size() == 1) return Duration::zero();

  bool all_implicit = true;
  for (TaskId id : chain) {
    if (!g.is_source(id) && g.task(id).comm == CommSemantics::kLet) {
      all_implicit = false;
      break;
    }
  }
  if (all_implicit) {
    // Lemma 5 (tighter than the per-hop decomposition below).
    Duration total = Duration::zero();
    for (TaskId id : chain) total += g.task(id).bcet;
    return total - rtm.at(chain.back()) + fifo_shift_lower(g, chain);
  }

  // Mixed / LET chain: sum per-hop lower bounds on r(π^{i+1}) − r(π^i).
  // A LET producer's token is at least one producer period old at any
  // read; an implicit producer's token is at least B(producer) old at its
  // write.  An implicit consumer reads at its start s <= r + R − B.
  Duration total = Duration::zero();
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const Task& u = g.task(chain[i]);
    const Task& v = g.task(chain[i + 1]);
    Duration b;
    if (g.is_source(chain[i])) {
      b = Duration::zero();
    } else if (u.comm == CommSemantics::kLet) {
      b = u.period;
    } else {
      b = u.bcet;
    }
    if (v.comm != CommSemantics::kLet) {
      b -= rtm.at(chain[i + 1]) - v.bcet;  // read delay of the consumer
    }
    total += b;
  }
  return total + fifo_shift_lower(g, chain);
}

BackwardBounds backward_bounds(const TaskGraph& g, const Path& chain,
                               const ResponseTimeMap& rtm,
                               HopBoundMethod method) {
  return BackwardBounds{wcbt_bound(g, chain, rtm, method),
                        bcbt_bound(g, chain, rtm)};
}

BackwardBounds buffered_backward_bounds(const TaskGraph& g, const Path& chain,
                                        const ResponseTimeMap& rtm,
                                        int buffer_size,
                                        HopBoundMethod method) {
  CETA_EXPECTS(buffer_size >= 1,
               "buffered_backward_bounds: buffer size must be >= 1");
  BackwardBounds b = backward_bounds(g, chain, rtm, method);
  if (chain.size() >= 2) {
    // Lemma 6 relative to whatever the head channel already has: replace
    // the graph-configured head-channel size with `buffer_size`.
    const int existing = g.channel(chain[0], chain[1]).buffer_size;
    const Duration delta =
        g.task(chain[0]).period * (buffer_size - existing);
    b.wcbt += delta;
    b.bcbt += delta;
  } else {
    CETA_EXPECTS(buffer_size == 1,
                 "buffered_backward_bounds: chain too short for a buffer");
  }
  return b;
}

}  // namespace ceta
