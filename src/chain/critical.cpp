#include "chain/critical.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/algorithms.hpp"

namespace ceta {

CriticalChain critical_chain(const TaskGraph& g, TaskId task,
                             const ResponseTimeMap& rtm,
                             HopBoundMethod method) {
  CETA_EXPECTS(task < g.num_tasks(), "critical_chain: unknown task id");
  CETA_EXPECTS(rtm.size() == g.num_tasks(),
               "critical_chain: response-time map size mismatch");

  // Longest-path DP over the DAG: best[v] = max over predecessors p of
  // best[p] + θ(p, v) + FIFO shift of the channel; sources are 0.
  constexpr Duration kUnreached = Duration::min();
  std::vector<Duration> best(g.num_tasks(), kUnreached);
  std::vector<TaskId> via(g.num_tasks(), kNoTask);
  for (TaskId v : g.topological_order()) {
    if (g.is_source(v)) {
      best[v] = Duration::zero();
      continue;
    }
    for (TaskId p : g.predecessors(v)) {
      if (best[p] == kUnreached) continue;
      CETA_EXPECTS(rtm[p] != Duration::max(),
                   "critical_chain: task '" + g.task(p).name +
                       "' has no finite WCRT");
      Duration hop = hop_bound(g, p, v, rtm, method);
      const int buf = g.channel(p, v).buffer_size;
      if (buf > 1) hop += g.task(p).period * (buf - 1);
      if (best[p] + hop > best[v]) {
        best[v] = best[p] + hop;
        via[v] = p;
      }
    }
  }

  CriticalChain out;
  if (best[task] == kUnreached) {
    // No source reaches `task` (it is itself a source): trivial chain.
    out.chain = {task};
    out.wcbt = Duration::zero();
    return out;
  }
  out.wcbt = best[task];
  Path reversed{task};
  TaskId cur = task;
  while (via[cur] != kNoTask) {
    cur = via[cur];
    reversed.push_back(cur);
  }
  out.chain.assign(reversed.rbegin(), reversed.rend());
  CETA_ASSERT(g.is_source(out.chain.front()),
              "critical_chain: reconstruction did not reach a source");
  return out;
}

}  // namespace ceta
