#include "chain/subchain.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ceta {

std::vector<TaskId> fork_join_joints(const Path& a, const Path& b) {
  CETA_EXPECTS(!a.empty() && !b.empty(), "fork_join_joints: empty chain");
  CETA_EXPECTS(a.back() == b.back(),
               "fork_join_joints: chains must end at the same task");
  std::vector<TaskId> joints = common_tasks(a, b);
  // Exclude a shared head ("except the source tasks in them"): Theorem 2
  // accounts for a shared head via the T(λ^1)-flooring case.
  if (a.front() == b.front()) {
    CETA_ASSERT(!joints.empty() && joints.front() == a.front(),
                "fork_join_joints: shared head must be first common task");
    joints.erase(joints.begin());
  }
  CETA_ASSERT(!joints.empty() && joints.back() == a.back(),
              "fork_join_joints: analyzed task must be a joint");
  return joints;
}

std::vector<Path> split_at_joints(const Path& chain,
                                  const std::vector<TaskId>& joints) {
  CETA_EXPECTS(!chain.empty(), "split_at_joints: empty chain");
  CETA_EXPECTS(!joints.empty(), "split_at_joints: no joints");
  CETA_EXPECTS(joints.back() == chain.back(),
               "split_at_joints: last joint must be the chain tail");
  std::vector<Path> out;
  out.reserve(joints.size());
  std::size_t begin = 0;  // start index of the current sub-chain
  for (TaskId joint : joints) {
    const auto it = std::find(chain.begin() +
                                  static_cast<std::ptrdiff_t>(begin),
                              chain.end(), joint);
    CETA_EXPECTS(it != chain.end(),
                 "split_at_joints: joint missing or out of order");
    const auto end = static_cast<std::size_t>(it - chain.begin());
    Path sub(chain.begin() + static_cast<std::ptrdiff_t>(
                                 begin == 0 ? 0 : begin - 1),
             chain.begin() + static_cast<std::ptrdiff_t>(end + 1));
    // For i >= 2 the sub-chain starts at the previous joint (inclusive);
    // the first sub-chain starts at the chain head.
    out.push_back(std::move(sub));
    begin = end + 1;
  }
  return out;
}

ForkJoinDecomposition decompose_fork_join(const Path& a, const Path& b) {
  ForkJoinDecomposition d;
  d.joints = fork_join_joints(a, b);
  d.alpha = split_at_joints(a, d.joints);
  d.beta = split_at_joints(b, d.joints);
  d.shared_head = (a.front() == b.front());
  return d;
}

}  // namespace ceta
