// End-to-end latency metrics of a cause-effect chain: maximum data age
// and maximum reaction time.
//
// The paper's backward time is "similar with the data age latency ... but
// a little different" (footnote 2): the data age of the output produced by
// the k-th tail job is f(π̄^{|π|}) − r(π̄^1) = len(π̄) + response time of
// the tail job.  The reaction time is the dual, forward-looking metric:
// how long until an external stimulus is first reflected in an output.
// Both are classic cause-effect-chain metrics ([1]-[5] in the paper); they
// are provided here because a disparity analysis is typically run next to
// an end-to-end latency budget.

#pragma once

#include "chain/backward_bounds.hpp"
#include "graph/paths.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

/// Upper bound on the data age of any output of the chain's tail task:
/// age = len(π̄) + (f − r)(tail job) <= W(π) + R(π^{|π|}).
Duration max_data_age_bound(const TaskGraph& g, const Path& chain,
                            const ResponseTimeMap& rtm,
                            HopBoundMethod method =
                                HopBoundMethod::kNonPreemptive);

/// Lower bound on the data age of any output: B(π) + B(π^{|π|}).
Duration min_data_age_bound(const TaskGraph& g, const Path& chain,
                            const ResponseTimeMap& rtm);

/// Upper bound on the reaction time: the longest time from an external
/// stimulus (arriving at the chain's source just after a sample) until
/// some output of the tail task reflects data sampled at or after the
/// stimulus:  T(π^1) + Σ_{i=2..|π|} (T(π^i) + R(π^i)).
/// Overwritten samples are fine — a later sample also reflects the
/// stimulus — so this holds for arbitrary (also non-harmonic) periods.
Duration max_reaction_time_bound(const TaskGraph& g, const Path& chain,
                                 const ResponseTimeMap& rtm);

}  // namespace ceta
