// Backward-time bounds of a cause-effect chain (§III, Lemmas 4–6).
//
// The backward time of the immediate backward job chain ending at a job of
// the tail task is len(π̄) = r(π̄^{|π|}) − r(π̄^1): how far into the past the
// source sample that the output originates from was taken.  The disparity
// analysis needs an upper bound W(π) on the worst case and a lower bound
// B(π) on the best case.
//
// Two hop-bound methods are provided:
//  * NonPreemptive (Lemma 4) — exploits non-preemptive fixed-priority
//    scheduling for consecutive tasks on the same ECU;
//  * SchedulingAgnostic — the safe-under-any-scheduler per-hop bound
//    θ = T + R in the style of Dürr et al. [5], used as the baseline the
//    paper compares against.
//
// Lemma 6 extends both bounds to chains whose second task reads through a
// FIFO buffer of size n on its input channel: in the long term (buffer
// full) both bounds shift right by (n−1)·T(π^1).

#pragma once

#include <functional>

#include "graph/paths.hpp"
#include "graph/task_graph.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

enum class HopBoundMethod {
  /// Lemma 4 — tighter, valid under non-preemptive fixed priority.
  kNonPreemptive,
  /// θ_i = T(π^i) + R(π^i) for every hop — valid under any scheduler
  /// (baseline of Dürr et al. [5]).
  kSchedulingAgnostic,
};

/// Bounds on the backward time of one chain: bcbt <= len(π̄) <= wcbt for
/// every immediate backward job chain π̄.  bcbt may be negative (Lemma 5
/// remark: the source job may be released after the output job).
struct BackwardBounds {
  Duration wcbt;
  Duration bcbt;
};

/// θ_i of Lemma 4 (or the scheduling-agnostic variant) for the hop from
/// `from` to its direct successor `to`.  `rtm` maps TaskId to a safe WCRT
/// upper bound.  Requires the edge (from, to) to exist in g.
Duration hop_bound(const TaskGraph& g, TaskId from, TaskId to,
                   const ResponseTimeMap& rtm, HopBoundMethod method);

/// Upper bound W(π) on the worst-case backward time (Lemma 4):
/// Σ_{i=1}^{|π|−1} θ_i.  `chain` must be a path of g with >= 1 task.
Duration wcbt_bound(const TaskGraph& g, const Path& chain,
                    const ResponseTimeMap& rtm,
                    HopBoundMethod method = HopBoundMethod::kNonPreemptive);

/// Lower bound B(π) on the best-case backward time (Lemma 5):
/// Σ_{i=1}^{|π|} B(π^i) − R(π^{|π|}).
Duration bcbt_bound(const TaskGraph& g, const Path& chain,
                    const ResponseTimeMap& rtm);

/// Both bounds at once.
BackwardBounds backward_bounds(
    const TaskGraph& g, const Path& chain, const ResponseTimeMap& rtm,
    HopBoundMethod method = HopBoundMethod::kNonPreemptive);

/// A pluggable source of chain backward bounds.  The pair analyses
/// (Theorem 1/2) evaluate bounds for many overlapping (sub-)chains; a
/// provider lets a session cache (engine/AnalysisEngine) memoize them.
/// Must return exactly what `backward_bounds` returns for the same chain.
using BackwardBoundsFn =
    std::function<BackwardBounds(const Path& chain, HopBoundMethod method)>;

/// Extra backward shift contributed by FIFO channels along the chain
/// (Lemma 6 applied hop-wise): upper / lower window edge.  Zero for a
/// chain of unbuffered (size-1) channels.
Duration fifo_shift_upper(const TaskGraph& g, const Path& chain);
Duration fifo_shift_lower(const TaskGraph& g, const Path& chain);

/// Lemma 6: bounds of the chain whose π^1→π^2 channel is a FIFO of size n
/// (long-term behavior, buffer full): both bounds shift by (n−1)·T(π^1).
/// With n = 1 this is exactly `backward_bounds`.  Requires |chain| >= 2
/// for n > 1.
BackwardBounds buffered_backward_bounds(
    const TaskGraph& g, const Path& chain, const ResponseTimeMap& rtm,
    int buffer_size,
    HopBoundMethod method = HopBoundMethod::kNonPreemptive);

}  // namespace ceta
