// Fork–join decomposition of a pair of chains (Theorem 2 setup).
//
// Two chains λ and ν ending at the same analyzed task are split at their
// common tasks {o_1, ..., o_c} (o_c = analyzed task; a shared *head* is
// excluded — Theorem 2 handles it with the period-flooring case instead).
// λ splits into α_1..α_c with α_i ending at o_i and, for i >= 2, starting
// at o_{i-1}; symmetrically for ν into β_1..β_c.

#pragma once

#include <vector>

#include "graph/paths.hpp"

namespace ceta {

/// The joint tasks used by Theorem 2: tasks common to a and b, in order,
/// excluding a common head.  Both paths must be non-empty and end at the
/// same task; the result therefore always contains that last task.
std::vector<TaskId> fork_join_joints(const Path& a, const Path& b);

/// Split `chain` at the given joints (which must appear in `chain` in
/// order, with joints.back() == chain.back()).  Returns c sub-chains:
/// the i-th ends at joints[i], and for i >= 1 starts at joints[i-1].
/// A first joint equal to the chain head yields the degenerate
/// single-task sub-chain {head}.
std::vector<Path> split_at_joints(const Path& chain,
                                  const std::vector<TaskId>& joints);

/// Decomposition of a chain pair, ready for Theorem 2.
struct ForkJoinDecomposition {
  std::vector<TaskId> joints;   ///< o_1..o_c (o_c = analyzed task)
  std::vector<Path> alpha;      ///< sub-chains of the first chain
  std::vector<Path> beta;       ///< sub-chains of the second chain
  bool shared_head = false;     ///< λ^1 == ν^1
};

/// Full decomposition of (a, b); both must end at the same task.
ForkJoinDecomposition decompose_fork_join(const Path& a, const Path& b);

}  // namespace ceta
