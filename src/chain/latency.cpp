#include "chain/latency.hpp"

#include "common/error.hpp"

namespace ceta {

Duration max_data_age_bound(const TaskGraph& g, const Path& chain,
                            const ResponseTimeMap& rtm,
                            HopBoundMethod method) {
  return wcbt_bound(g, chain, rtm, method) + rtm.at(chain.back());
}

Duration min_data_age_bound(const TaskGraph& g, const Path& chain,
                            const ResponseTimeMap& rtm) {
  return bcbt_bound(g, chain, rtm) + g.task(chain.back()).bcet;
}

Duration max_reaction_time_bound(const TaskGraph& g, const Path& chain,
                                 const ResponseTimeMap& rtm) {
  CETA_EXPECTS(!chain.empty(), "max_reaction_time_bound: empty chain");
  CETA_EXPECTS(is_path(g, chain),
               "max_reaction_time_bound: not a path of the graph");
  CETA_EXPECTS(rtm.size() == g.num_tasks(),
               "max_reaction_time_bound: response-time map size mismatch");
  Duration total = g.task(chain.front()).period;
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const TaskId id = chain[i];
    CETA_EXPECTS(rtm[id] != Duration::max(),
                 "max_reaction_time_bound: task '" + g.task(id).name +
                     "' has no finite WCRT");
    total += g.task(id).period + rtm[id];
  }
  return total;
}

}  // namespace ceta
