#include "disparity/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "graph/algorithms.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

namespace {

Duration scaled(Duration d, double factor) {
  return Duration::ns(static_cast<std::int64_t>(
      std::llround(static_cast<double>(d.count()) * factor)));
}

/// Bound of `task` on `graph` with freshly computed response times;
/// nullopt-style: returns false when unschedulable.
bool bound_of(const TaskGraph& graph, TaskId task,
              const SensitivityOptions& opt, Duration& out) {
  const RtaResult rta = analyze_response_times(graph, opt.rta);
  // Only the analyzed task's ancestors need finite response times.
  for (TaskId anc : ancestors(graph, task)) {
    if (!rta.schedulable[anc]) return false;
  }
  out = analyze_time_disparity(graph, task, rta.response_time, opt.disparity)
            .worst_case;
  return true;
}

}  // namespace

std::vector<SensitivityEntry> disparity_sensitivity(
    const TaskGraph& g, TaskId task, const SensitivityOptions& opt) {
  CETA_EXPECTS(task < g.num_tasks(), "disparity_sensitivity: bad task id");
  CETA_EXPECTS(opt.period_factor > 0.0 && opt.wcet_factor >= 0.0,
               "disparity_sensitivity: factors must be positive");

  Duration baseline;
  CETA_EXPECTS(bound_of(g, task, opt, baseline),
               "disparity_sensitivity: baseline system is unschedulable");

  std::vector<SensitivityEntry> entries;
  for (const TaskId anc : ancestors(g, task)) {
    // Period perturbation.
    {
      TaskGraph perturbed = g;
      Task& t = perturbed.task(anc);
      const Duration new_period = scaled(t.period, opt.period_factor);
      if (new_period > Duration::zero() && new_period > t.wcet &&
          t.offset < new_period && t.jitter < new_period) {
        t.period = new_period;
        SensitivityEntry e;
        e.task = anc;
        e.param = PerturbedParam::kPeriod;
        e.baseline = baseline;
        e.schedulable = bound_of(perturbed, task, opt, e.perturbed);
        if (!e.schedulable) e.perturbed = baseline;
        entries.push_back(e);
      }
    }
    // WCET perturbation (sources have zero execution time — skip).
    if (g.task(anc).wcet > Duration::zero()) {
      TaskGraph perturbed = g;
      Task& t = perturbed.task(anc);
      t.wcet = scaled(t.wcet, opt.wcet_factor);
      t.bcet = std::min(t.bcet, t.wcet);
      SensitivityEntry e;
      e.task = anc;
      e.param = PerturbedParam::kWcet;
      e.baseline = baseline;
      e.schedulable = bound_of(perturbed, task, opt, e.perturbed);
      if (!e.schedulable) e.perturbed = baseline;
      entries.push_back(e);
    }
  }

  std::sort(entries.begin(), entries.end(),
            [](const SensitivityEntry& a, const SensitivityEntry& b) {
              if (a.schedulable != b.schedulable) return a.schedulable;
              const Duration da = a.delta() < Duration::zero() ? -a.delta()
                                                               : a.delta();
              const Duration db = b.delta() < Duration::zero() ? -b.delta()
                                                               : b.delta();
              return da > db;
            });
  return entries;
}

}  // namespace ceta
