#include "disparity/exact.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "graph/algorithms.hpp"

namespace ceta {

namespace {

/// Timestamp of the source sample a job released at `t_read` consumes
/// through `chain` (deterministic LET arithmetic).  Asserts the system is
/// past warm-up (all traced job indices non-negative).
///
/// Tie-breaking at exact coincidence instants (audited, pinned by
/// tests/test_exact.cpp boundary tests): a publish at exactly t IS
/// visible to a read at t.  This matches Definition 1 ("finishes no later
/// than the start") and the simulator's event order (finish/publish
/// before release at equal instants — sim/engine.hpp).  floor_div gives
/// precisely that semantics on both branches: at t = o + (k+1)·T the
/// non-source branch selects job k, whose publish instant is t itself,
/// and at t = o + k·T the source branch selects the sample stamped t.
Instant trace_source_timestamp(const TaskGraph& g, const Path& chain,
                               Instant t_read) {
  Instant t = t_read;
  for (std::size_t i = chain.size(); i-- > 1;) {
    const TaskId producer = chain[i - 1];
    const Task& p = g.task(producer);
    const int buffer = g.channel(producer, chain[i]).buffer_size;
    std::int64_t k;
    if (g.is_source(producer)) {
      // Latest sample at or before t (samples at offset + k·T).
      k = floor_div(t - p.offset, p.period);
    } else {
      // Latest publish at or before t (publishes at offset + (k+1)·T).
      k = floor_div(t - p.offset, p.period) - 1;
    }
    k -= buffer - 1;  // FIFO: read the oldest of the last n tokens
    CETA_ASSERT(k >= 0, "exact_let_disparity: traced before warm-up");
    t = p.offset + p.period * k;  // producer job's release = its read time
  }
  return t;
}

/// Max over `chains` of Σ_hops (buffer+1)·T(producer) — see
/// exact_warmup_horizon for why this suffices.
Duration horizon_over_chains(const TaskGraph& g,
                             const std::vector<Path>& chains) {
  Duration deepest = Duration::zero();
  for (const Path& chain : chains) {
    Duration span = Duration::zero();
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      span += g.task(chain[i]).period *
              (1 + g.channel(chain[i], chain[i + 1]).buffer_size);
    }
    deepest = std::max(deepest, span);
  }
  return deepest;
}

}  // namespace

// Why Σ (buffer+1)·T per hop is a sufficient warm-up horizon: consider
// tracing one hop backward through producer p with period T, offset
// o ∈ [0, T) and FIFO depth n, from instant t.
//   * non-source: k = ⌊(t−o)/T⌋ − 1 − (n−1) = ⌊(t−o)/T⌋ − n, so k ≥ 0
//     iff t ≥ o + n·T, which t ≥ (n+1)·T implies;
//   * source:     k = ⌊(t−o)/T⌋ − (n−1),     so k ≥ 0 iff t ≥ o + (n−1)·T,
//     which t ≥ n·T implies;
//   * either way the traced instant t' = o + k·T satisfies
//     t' > t − (n+1)·T  (since ⌊x/T⌋ > x/T − 1 and o ≥ 0),
//     i.e. one hop moves the instant back by less than (n+1)·T.
// Accumulating the per-hop decrements along a chain: a read at
// t ≥ Σ_hops (n_i+1)·T_i reaches every hop with enough slack left for
// that hop's own requirement, so every traced index is non-negative.
// Taking the max over all chains covers them all.  (The previous
// implementation summed unproven ×3-period terms over the whole ancestor
// closure *plus* per-hop terms over every chain — always larger, never
// justified.)
Duration exact_warmup_horizon(const TaskGraph& g, TaskId task,
                              std::size_t path_cap) {
  CETA_EXPECTS(task < g.num_tasks(), "exact_warmup_horizon: bad task id");
  return horizon_over_chains(g, enumerate_source_chains(g, task, path_cap));
}

ExactLetResult exact_let_disparity(const TaskGraph& g, TaskId task,
                                   std::size_t path_cap,
                                   std::size_t max_releases) {
  CETA_EXPECTS(task < g.num_tasks(), "exact_let_disparity: bad task id");
  g.validate();

  const std::vector<TaskId> closure = ancestors(g, task);
  std::vector<std::int64_t> periods;
  for (const TaskId id : closure) {
    const Task& t = g.task(id);
    CETA_EXPECTS(g.is_source(id) || t.comm == CommSemantics::kLet,
                 "exact_let_disparity: task '" + t.name +
                     "' is not LET; the analysis needs a deterministic "
                     "(fully LET) ancestor closure");
    CETA_EXPECTS(t.jitter == Duration::zero(),
                 "exact_let_disparity: task '" + t.name +
                     "' has release jitter");
    periods.push_back(t.period.count());
  }

  const std::vector<Path> chains =
      enumerate_source_chains(g, task, path_cap);
  ExactLetResult out;
  out.worst_disparity = Duration::zero();
  out.worst_release = Instant::zero();
  if (chains.size() < 2) return out;

  const Duration hyper = hyperperiod(periods.data(), periods.size());
  const Task& analyzed = g.task(task);
  const std::int64_t releases = floor_div(hyper, analyzed.period);
  CETA_EXPECTS(releases >= 1, "exact_let_disparity: degenerate hyperperiod");
  if (static_cast<std::size_t>(releases) > max_releases) {
    throw CapacityError(
        "exact_let_disparity: hyperperiod spans too many releases");
  }

  // Start at the first release past the derived sufficient horizon (plus
  // one hyperperiod of margin, so the scanned window is certainly in
  // steady state), clamped to the task's first release: the horizon is
  // tight enough that large analyzed-task offsets could otherwise push k0
  // negative.
  const Duration warmup = horizon_over_chains(g, chains) + hyper;
  const std::int64_t k0 = std::max<std::int64_t>(
      0, ceil_div(warmup - analyzed.offset, analyzed.period));
  out.releases_examined = static_cast<std::size_t>(releases);
  for (std::int64_t k = k0; k < k0 + releases; ++k) {
    const Instant release = analyzed.offset + analyzed.period * k;
    Instant min_ts = Duration::max();
    Instant max_ts = Duration::min();
    for (const Path& chain : chains) {
      const Instant ts = trace_source_timestamp(g, chain, release);
      min_ts = std::min(min_ts, ts);
      max_ts = std::max(max_ts, ts);
    }
    const Duration disparity = max_ts - min_ts;
    if (disparity > out.worst_disparity) {
      out.worst_disparity = disparity;
      out.worst_release = release;
    }
  }
  return out;
}

}  // namespace ceta
