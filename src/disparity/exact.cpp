#include "disparity/exact.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "graph/algorithms.hpp"

namespace ceta {

namespace {

/// Timestamp of the source sample a job released at `t_read` consumes
/// through `chain` (deterministic LET arithmetic).  Asserts the system is
/// past warm-up (all traced job indices non-negative).
Instant trace_source_timestamp(const TaskGraph& g, const Path& chain,
                               Instant t_read) {
  Instant t = t_read;
  for (std::size_t i = chain.size(); i-- > 1;) {
    const TaskId producer = chain[i - 1];
    const Task& p = g.task(producer);
    const int buffer = g.channel(producer, chain[i]).buffer_size;
    std::int64_t k;
    if (g.is_source(producer)) {
      // Latest sample at or before t (samples at offset + k·T).
      k = floor_div(t - p.offset, p.period);
    } else {
      // Latest publish at or before t (publishes at offset + (k+1)·T).
      k = floor_div(t - p.offset, p.period) - 1;
    }
    k -= buffer - 1;  // FIFO: read the oldest of the last n tokens
    CETA_ASSERT(k >= 0, "exact_let_disparity: traced before warm-up");
    t = p.offset + p.period * k;  // producer job's release = its read time
  }
  return t;
}

}  // namespace

ExactLetResult exact_let_disparity(const TaskGraph& g, TaskId task,
                                   std::size_t path_cap,
                                   std::size_t max_releases) {
  CETA_EXPECTS(task < g.num_tasks(), "exact_let_disparity: bad task id");
  g.validate();

  const std::vector<TaskId> closure = ancestors(g, task);
  std::vector<std::int64_t> periods;
  Duration warmup_span = Duration::zero();
  int max_buffer = 1;
  for (const TaskId id : closure) {
    const Task& t = g.task(id);
    CETA_EXPECTS(g.is_source(id) || t.comm == CommSemantics::kLet,
                 "exact_let_disparity: task '" + t.name +
                     "' is not LET; the analysis needs a deterministic "
                     "(fully LET) ancestor closure");
    CETA_EXPECTS(t.jitter == Duration::zero(),
                 "exact_let_disparity: task '" + t.name +
                     "' has release jitter");
    periods.push_back(t.period.count());
    warmup_span += t.period * 3;
    for (const TaskId succ : g.successors(id)) {
      max_buffer = std::max(max_buffer, g.channel(id, succ).buffer_size);
    }
  }
  warmup_span += g.task(task).period * (3 * max_buffer);

  const std::vector<Path> chains =
      enumerate_source_chains(g, task, path_cap);
  ExactLetResult out;
  out.worst_disparity = Duration::zero();
  out.worst_release = Instant::zero();
  if (chains.size() < 2) return out;

  // Deepest chains also need (buffer-scaled) depth per hop.
  for (const Path& chain : chains) {
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
      warmup_span += g.task(chain[i]).period *
                     (1 + g.channel(chain[i], chain[i + 1]).buffer_size);
    }
  }

  const Duration hyper = hyperperiod(periods.data(), periods.size());
  const Task& analyzed = g.task(task);
  const std::int64_t releases = floor_div(hyper, analyzed.period);
  CETA_EXPECTS(releases >= 1, "exact_let_disparity: degenerate hyperperiod");
  if (static_cast<std::size_t>(releases) > max_releases) {
    throw CapacityError(
        "exact_let_disparity: hyperperiod spans too many releases");
  }

  const std::int64_t k0 =
      ceil_div(warmup_span - analyzed.offset, analyzed.period);
  out.releases_examined = static_cast<std::size_t>(releases);
  for (std::int64_t k = k0; k < k0 + releases; ++k) {
    const Instant release = analyzed.offset + analyzed.period * k;
    Instant min_ts = Duration::max();
    Instant max_ts = Duration::min();
    for (const Path& chain : chains) {
      const Instant ts = trace_source_timestamp(g, chain, release);
      min_ts = std::min(min_ts, ts);
      max_ts = std::max(max_ts, ts);
    }
    const Duration disparity = max_ts - min_ts;
    if (disparity > out.worst_disparity) {
      out.worst_disparity = disparity;
      out.worst_release = release;
    }
  }
  return out;
}

}  // namespace ceta
