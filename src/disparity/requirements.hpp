// The paper's problem statement, §III: "verify whether the time disparity
// of a task is bounded by a pre-defined value".
//
// `verify_disparity_requirements` checks a set of (task, threshold)
// requirements against the S-diff analysis and, for violated ones,
// attempts the §IV remedy: a buffer design (multi-chain generalization of
// Algorithm 1) that shrinks the bound below the threshold.  Designs for
// different tasks may buffer the same channel; remedies are computed and
// applied cumulatively in requirement order, re-verifying earlier
// requirements at the end (a buffer added for one task shifts data seen
// by every consumer downstream of that channel).

#pragma once

#include <vector>

#include "disparity/multi_buffer.hpp"
#include "graph/task_graph.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

/// One (task, threshold) requirement to verify.
struct DisparityRequirement {
  TaskId task = 0;  ///< the task whose disparity is constrained
  /// Required upper bound on the task's worst-case time disparity.
  Duration max_disparity;
};

/// Verdict for one requirement after verification (and remediation).
enum class RequirementStatus {
  kSatisfied,          ///< bound <= threshold on the input graph
  kFixedByBuffers,     ///< violated, but the buffer remedy closes the gap
  kViolated,           ///< violated and the remedy does not close the gap
};

/// Per-requirement verification result.
struct RequirementOutcome {
  DisparityRequirement requirement;                       ///< as given
  RequirementStatus status = RequirementStatus::kSatisfied;  ///< verdict
  /// S-diff bound on the input graph.
  Duration bound;
  /// S-diff bound on the remedied graph (== bound when untouched).
  Duration final_bound;
  /// Channels buffered for this requirement (empty unless kFixedByBuffers
  /// was attempted and helped).
  std::vector<ChannelBuffer> buffers;
};

/// Result of verify_disparity_requirements.
struct RequirementsReport {
  std::vector<RequirementOutcome> outcomes;  ///< one per requirement, in order
  /// All requirements hold on the final (possibly buffered) graph.
  bool all_satisfied = false;
  /// The graph with every applied remedy (equals the input when none).
  TaskGraph final_graph;
};

/// Verify all requirements; attempt buffer remedies for violated ones.
RequirementsReport verify_disparity_requirements(
    const TaskGraph& g, const std::vector<DisparityRequirement>& reqs,
    const ResponseTimeMap& rtm, const DisparityOptions& opt = {});

}  // namespace ceta
