// DAG dynamic-programming disparity backend (DisparityBackend::kDagDp).
//
// The enumerating analyzer materializes the chain set P of the analyzed
// task and visits O(|P|²) pairs — unusable once |P| outgrows
// DisparityOptions::path_cap (dense 10⁴–10⁵-task graphs reach 10⁹⁺
// chains).  This backend instead propagates *aggregated path summaries*
// over the topological order of the task's ancestor cone, generalizing the
// pairwise kernel's observation that both backward-time bounds of a chain
// are per-hop sums:
//
//   W(π) = Σ_hops (θ + fifo_upper)                        (Lemma 4)
//   B(π) = Σ_tasks bcet − R(tail) + Σ fifo_lower          (all-implicit)
//        | Σ_hops b-term + Σ fifo_lower                   (mixed/LET)
//
// Per (task, source) the DP keeps, separately for the all-implicit-so-far
// ("class I", both B currencies — a LET task later in the chain switches
// the branch) and the has-LET ("class L") chain sets, the top-2 of W and
// the top-2 of −B with achiever counts.  Those aggregates are closed
// under edge extension (a per-edge constant shift) and under merging at
// join vertices, and at the sink they answer
//
//   max over distinct chains a ≠ b of  W(a) − B(b)
//
// per source (floored to the source period when jitter-free — Theorem 1's
// same-source refinement) and across sources, in O(V + E·S) where S is
// the number of sources in the cone, without materializing a single
// chain.  That maximum is exactly the worst case of the enumerating
// analyzer whenever every pair is bounded by Theorem 1 on the full
// chains, which holds in two statically detectable cases (DESIGN.md §10):
//
//   1. joint-free cone: no task other than the sink lies on two distinct
//      chains (up[u]·down[u] == 1 for every non-sink cone task) — every
//      pair is structure-free, so every method × truncation combination
//      degenerates to Theorem 1 on the full chains; and
//   2. DisparityMethod::kIndependent with truncation off.
//
// Otherwise the result is a *relaxed* safe upper bound (each fork–join or
// truncated pair bound is clamped by Theorem 1 on the full chains), equal
// by construction to the kIndependent + kNever enumeration, and the
// report carries exact = false.  analyze_time_disparity_backend() adds
// the automatic exact fallback: when exactness demands enumeration and
// the instance is enumerable under path_cap, it routes to the pairwise
// kernel instead.

#pragma once

#include <cstddef>

#include "disparity/analyzer.hpp"
#include "graph/paths.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

class ThreadPool;

/// Tuning knobs (and the test-only fault hook) of the DP backend.
struct DagDpOptions {
  /// Cap on live (task, source) summary entries of the per-source DP.
  /// Beyond it the analysis restarts with source-agnostic global
  /// aggregates — O(V) memory, still a safe bound, exact only for
  /// joint-free cones (the per-source flooring is lost otherwise).
  std::size_t state_budget = 1'500'000;
  /// Cap on the number of cone sources for which the source-pair scan
  /// (KeepPairs::kTopK / kAll over S(S+1)/2 source pairs) runs; beyond
  /// it only the single worst source pair is reported.
  std::size_t source_pair_scan_cap = 2'048;
  /// Test-only fault: subtract the worst witness source's period from the
  /// final worst_case (the classic dropped-period off-by-one, injected
  /// into the DP combination step).  The dag_dp_matches_enumeration
  /// verify property must flag the divergence; never set in production.
  bool fault_drop_source_period = false;
};

/// Run the DAG DP on `task` unconditionally (never falls back to
/// enumeration): serves the exact cases exactly and everything else as a
/// DP-relaxed safe upper bound with DisparityReport::exact == false.  The
/// report has backend == kDagDp, truncated == true, empty chains/pairs,
/// and source-granularity worst pairs in source_pairs.  `opt.backend` is
/// ignored (callers route; see analyze_time_disparity_backend).
/// Preconditions: every cone task needs a finite WCRT in `rtm`, and every
/// chain's backward bounds must satisfy bcbt <= wcbt (sampling_window's
/// precondition — it is what lets the DP track maxima only); the DP
/// checks the latter in O(1) per summary via a tracked max(B − W) witness
/// and throws PreconditionError on violation.
DisparityReport analyze_time_disparity_dag_dp(const TaskGraph& g, TaskId task,
                                              const ResponseTimeMap& rtm,
                                              const DisparityOptions& opt = {},
                                              const DagDpOptions& dp = {});

/// The backend-routing front door implementing DisparityBackend semantics
/// (AnalysisEngine::disparity routes identically through its caches):
///  - kEnumerate: the pairwise kernel; CapacityError beyond path_cap.
///  - kAuto: the kernel when the (overflow-checked) chain count fits
///    under path_cap, the DP otherwise — never throws CapacityError.
///  - kDagDp: the DP, except that when its result would be inexact and
///    the instance is enumerable the kernel serves the query instead
///    (the report's `backend` field records which one ran).
/// `pool` parallelizes the kernel's pair reduction when enumeration runs.
DisparityReport analyze_time_disparity_backend(const TaskGraph& g, TaskId task,
                                               const ResponseTimeMap& rtm,
                                               const DisparityOptions& opt = {},
                                               ThreadPool* pool = nullptr,
                                               const DagDpOptions& dp = {});

}  // namespace ceta
