// Pairwise-analysis kernel — the optimized inner loop of task-level
// disparity analysis (Theorems 1/2 over all chain pairs of one sink).
//
// The reference path (analyze_time_disparity / pair_disparity_bound_from)
// re-derives every truncated-chain and fork–join sub-chain backward bound
// by walking the chains per pair: with K chains of length L and c joints
// per pair, that is O(K² · c · L) hop evaluations.  This kernel exploits
// two structural facts of enumerated chain sets:
//
//  1. Backward bounds compose hop-by-hop.  W(π) is a sum of per-hop θ
//     terms plus per-hop FIFO shifts, and B(π) is either a sum of task
//     BCETs minus the tail's read delay (all-implicit chains, Lemma 5) or
//     a sum of per-hop lower-bound terms (mixed/LET chains) — all exact
//     int64 sums.  One O(L) prefix-sum pass per chain (SuffixBoundTable)
//     therefore answers W/B of *any* contiguous sub-chain in O(1):
//     truncated chains are prefixes, fork–join sub-chains are infixes.
//  2. Many (i, j) pairs truncate to the same (λ, ν).  Truncated prefixes
//     are interned in a flat arena (offset+length views over shared
//     buffers, no per-pair Path copies) and the truncated-pair bound is
//     memoized on the interned id pair.
//
// The K² pair loop is additionally tiled over a ThreadPool with per-tile
// accumulators merged deterministically, and DisparityOptions::keep_pairs
// selects how much of the O(K²) pair vector is materialized.  Results are
// bit-identical to the reference analyzer in every mode (verified by
// verify::Property::kPairKernelMatchesReference and tests/
// test_pair_kernel.cpp): Duration arithmetic is exact int64, so prefix-sum
// reassociation cannot change a single bit.

#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "chain/backward_bounds.hpp"
#include "disparity/analyzer.hpp"
#include "graph/paths.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

class ThreadPool;

/// Non-owning view of an interned (or caller-owned) chain.  Views returned
/// by ChainArena stay valid for the arena's lifetime; views over a Path
/// are valid while that Path is.
struct ChainView {
  const TaskId* data = nullptr;
  std::size_t size = 0;

  const TaskId* begin() const { return data; }
  const TaskId* end() const { return data + size; }
  TaskId operator[](std::size_t i) const { return data[i]; }
  TaskId front() const { return data[0]; }
  TaskId back() const { return data[size - 1]; }

  friend bool operator==(const ChainView& a, const ChainView& b) {
    if (a.size != b.size) return false;
    for (std::size_t i = 0; i < a.size; ++i) {
      if (a.data[i] != b.data[i]) return false;
    }
    return true;
  }
};

/// Flat chain arena: interns task-id sequences into stable storage and
/// dedups them, so equal chains (e.g. the truncated prefixes many pairs
/// share) get one copy and one id.  Storage is block-allocated — a chain
/// never spans blocks and blocks never reallocate — so views handed out
/// earlier survive later intern() calls.
class ChainArena {
 public:
  using ChainId = std::uint32_t;

  /// Intern a chain; returns the id of the existing copy if the identical
  /// sequence was interned before.
  ChainId intern(const TaskId* data, std::size_t len);
  ChainId intern(ChainView v) { return intern(v.data, v.size); }

  ChainView view(ChainId id) const { return refs_[id]; }
  std::size_t num_chains() const { return refs_.size(); }
  /// Total TaskIds stored (dedup diagnostics).
  std::size_t num_ids() const { return stored_ids_; }

 private:
  static constexpr std::size_t kBlockIds = std::size_t{1} << 14;
  std::vector<std::vector<TaskId>> blocks_;
  std::vector<ChainView> refs_;
  std::unordered_map<std::uint64_t, std::vector<ChainId>> index_;
  std::size_t stored_ids_ = 0;
};

/// O(L) prefix-sum tables over one chain, answering the backward-time
/// bounds of any contiguous sub-chain [first, last] (inclusive, indices
/// into the chain) in O(1) — bit-identical to backward_bounds() on the
/// materialized sub-chain.  The chain view and the response-time map must
/// outlive the table.
class SuffixBoundTable {
 public:
  SuffixBoundTable(const TaskGraph& g, ChainView chain,
                   const ResponseTimeMap& rtm, HopBoundMethod method);

  /// W/B of the sub-chain chain[first..last].  A single task has zero
  /// backward time by definition.
  BackwardBounds bounds(std::size_t first, std::size_t last) const;

  /// Bounds of the whole chain (== backward_bounds on it).
  BackwardBounds full() const { return bounds(0, chain_.size - 1); }

  ChainView chain() const { return chain_; }

 private:
  ChainView chain_;
  const ResponseTimeMap* rtm_;
  /// Prefix sums over hops: wpre_[i] = Σ_{t<i} (θ_t + fifo_upper_t), so a
  /// sub-chain's W is one subtraction.  Duration is exact int64 —
  /// reassociating the reference's left-to-right sum is lossless.
  std::vector<Duration> wpre_;
  /// Prefix sums of the mixed/LET per-hop lower-bound terms (b_t +
  /// fifo_lower_t) of bcbt_bound's general branch.
  std::vector<Duration> bpre_;
  /// Prefix sums of task BCETs and of fifo_lower terms, for Lemma 5's
  /// tighter all-implicit branch.
  std::vector<Duration> bcet_pre_;
  std::vector<Duration> fifo_lo_pre_;
  /// Prefix count of non-source LET tasks: a sub-chain is "all implicit"
  /// iff its count is zero — selects between the two B branches.
  std::vector<std::uint32_t> let_pre_;
};

/// Analyze `task` with the kernel; bit-identical to analyze_time_disparity
/// with the same options.  `pool` enables the intra-sink parallel
/// reduction (nullptr or a 1-worker pool runs serially; results do not
/// depend on the choice).
DisparityReport analyze_time_disparity_kernel(const TaskGraph& g, TaskId task,
                                              const ResponseTimeMap& rtm,
                                              const DisparityOptions& opt = {},
                                              ThreadPool* pool = nullptr);

/// Kernel core over a pre-enumerated chain set (the engine passes its
/// memoized set and full-chain bounds; `full_bounds`, when given, must
/// equal backward_bounds of each chain and is index-aligned with
/// `chains`).  The report's chain vector is a copy of `chains`.
DisparityReport pair_kernel_analyze(
    const TaskGraph& g, const std::vector<Path>& chains,
    const ResponseTimeMap& rtm, const DisparityOptions& opt,
    ThreadPool* pool = nullptr,
    const std::vector<BackwardBounds>* full_bounds = nullptr);

}  // namespace ceta
