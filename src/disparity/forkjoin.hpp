// Theorem 2 — the fork–join-aware pairwise disparity bound (S-diff).
//
// Two chains λ, ν ending at the analyzed task are split at their common
// tasks {o_1, ..., o_c} into sub-chains α_1..α_c / β_1..β_c.  Starting
// from the shared analyzed job (x_c = y_c = 0), the recursion of Theorem 2
// propagates, joint by joint, the range [x_j·T(o_j), y_j·T(o_j)] of the
// difference of release times between the jobs of o_j reached by the two
// immediate backward job chains:
//
//   x_j = ceil( (B(α_{j+1}) − W(β_{j+1}) + x_{j+1}·T(o_{j+1})) / T(o_j) )
//   y_j = floor( (W(α_{j+1}) − B(β_{j+1}) + y_{j+1}·T(o_{j+1})) / T(o_j) )
//
// and the final bound applies Lemma 3 to the first sub-chain pair:
//
//   O = max{ |W(β_1) − B(α_1) − x_1·T(o_1)|, |B(β_1) − W(α_1) − y_1·T(o_1)| }
//
// floored to a multiple of T(λ^1) when the chains share their source.
// The same computation also yields the two *sampling windows* used by the
// buffer-design optimization (Algorithm 1).

#pragma once

#include <cstdint>
#include <vector>

#include "chain/backward_bounds.hpp"
#include "chain/subchain.hpp"
#include "common/interval.hpp"
#include "graph/paths.hpp"

namespace ceta {

/// Full output of the Theorem 2 computation for one chain pair.
struct ForkJoinBound {
  /// The disparity bound on |t(λ̄¹) − t(ν̄¹)| (Theorem 2, eq. (1)).
  Duration bound;
  /// O^{x1,y1}_{α1,β1} before the shared-source flooring.
  Duration separation;
  /// Joint tasks o_1..o_c (o_c = analyzed task).
  std::vector<TaskId> joints;
  /// x_j / y_j per joint (index aligned with `joints`).
  std::vector<std::int64_t> x;
  std::vector<std::int64_t> y;  ///< upper counterpart of `x`
  /// Backward-time bounds of the first sub-chain pair.
  BackwardBounds alpha1;
  BackwardBounds beta1;  ///< ν-side counterpart of `alpha1`
  /// Sampling windows of the two traced sources, anchored at the release
  /// of λ's o_1 job: t(λ̄¹) ∈ window_lambda, t(ν̄¹) ∈ window_nu
  /// (Lemma 1 / Lemma 2; Algorithm 1 lines 4–5).
  Interval window_lambda;
  Interval window_nu;        ///< ν's sampling window, same anchor
  bool shared_head = false;  ///< chains start at the same source task
  /// True when the fork-join recursion was inapplicable (a joint task or
  /// the shared head has release jitter, breaking the multiple-of-period
  /// arguments) and the bound fell back to the Theorem 1 computation on
  /// the full chains.
  bool degraded = false;
};

/// Theorem 2 bound for two non-identical chains of g ending at the same
/// task.  `rtm` maps TaskId to a safe WCRT bound.
ForkJoinBound sdiff_pair_bound(const TaskGraph& g, const Path& lambda,
                               const Path& nu, const ResponseTimeMap& rtm,
                               HopBoundMethod method =
                                   HopBoundMethod::kNonPreemptive);

/// Same bound with every (sub-)chain's backward bounds pulled from
/// `bounds` instead of being recomputed.  The Theorem 2 recursion needs
/// bounds for all 2c sub-chains of the decomposition, and chain pairs of
/// the same sink share many of them — the memoization hook used by
/// AnalysisEngine.  `bounds` must agree with `backward_bounds` on g.
ForkJoinBound sdiff_pair_bound(const TaskGraph& g, const Path& lambda,
                               const Path& nu, HopBoundMethod method,
                               const BackwardBoundsFn& bounds);

}  // namespace ceta
