#include "disparity/analyzer.hpp"

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/math.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ceta {

namespace {

/// Theorem 1 from precomputed backward bounds (avoids re-walking chains
/// for every pair; the analyzer visits O(|P|^2) pairs).
Duration pdiff_from_bounds(const TaskGraph& g, const Path& a, const Path& b,
                           const BackwardBounds& ba, const BackwardBounds& bb) {
  const Duration o = independent_window_separation(ba, bb);
  if (a.front() == b.front() &&
      g.task(a.front()).jitter == Duration::zero()) {
    return floor_to_multiple(o, g.task(a.front()).period);
  }
  return o;
}

/// True if a and b share only their common tail task and have distinct
/// heads — the structure-free case where Theorem 2 degenerates to
/// Theorem 1 and truncation is the identity.  One mark-vector pass,
/// O(|a|+|b|): stamp b's tasks, count how many of a's are stamped.  The
/// stamp buffer is versioned and thread_local, so the analyzer's hot
/// O(|P|²) pair loop neither allocates nor clears per pair (and stays
/// safe under disparity_all's concurrent per-sink workers).
bool structure_free(const Path& a, const Path& b) {
  if (a.front() == b.front()) return false;
  thread_local std::vector<std::uint32_t> stamp;
  thread_local std::uint32_t version = 0;
  TaskId max_id = 0;
  for (TaskId y : b) max_id = std::max(max_id, y);
  if (stamp.size() <= max_id) stamp.resize(max_id + 1, 0);
  if (++version == 0) {  // wrapped: old stamps could alias; reset
    std::fill(stamp.begin(), stamp.end(), 0);
    version = 1;
  }
  for (TaskId y : b) stamp[y] = version;
  std::size_t common = 0;
  for (TaskId x : a) {
    if (x < stamp.size() && stamp[x] == version) {
      if (++common > 1) return false;
    }
  }
  return common == 1;  // exactly the shared tail
}

/// Provider evaluating bounds directly (the un-memoized default).
BackwardBoundsFn direct_bounds(const TaskGraph& g,
                               const ResponseTimeMap& rtm) {
  return [&g, &rtm](const Path& chain, HopBoundMethod m) {
    return backward_bounds(g, chain, rtm, m);
  };
}

}  // namespace

void DisparityOptions::validate() const {
  const auto bad = [](const std::string& what) {
    throw InvalidOptionsError("DisparityOptions: " + what);
  };
  switch (method) {
    case DisparityMethod::kIndependent:
    case DisparityMethod::kForkJoin:
      break;
    default:
      bad("unknown DisparityMethod");
  }
  switch (hop_method) {
    case HopBoundMethod::kNonPreemptive:
    case HopBoundMethod::kSchedulingAgnostic:
      break;
    default:
      bad("unknown HopBoundMethod");
  }
  switch (truncation) {
    case JointTruncation::kAuto:
    case JointTruncation::kAlways:
    case JointTruncation::kNever:
      break;
    default:
      bad("unknown JointTruncation");
  }
  switch (keep_pairs) {
    case KeepPairs::kAll:
    case KeepPairs::kWorstOnly:
    case KeepPairs::kTopK:
      break;
    default:
      bad("unknown KeepPairs");
  }
  switch (backend) {
    case DisparityBackend::kAuto:
    case DisparityBackend::kEnumerate:
    case DisparityBackend::kDagDp:
      break;
    default:
      bad("unknown DisparityBackend");
  }
  if (path_cap == 0) bad("path_cap must be >= 1");
  if (keep_pairs == KeepPairs::kTopK && top_k == 0) {
    bad("keep_pairs == kTopK requires top_k >= 1");
  }
  if (backend == DisparityBackend::kDagDp &&
      keep_pairs == KeepPairs::kAll) {
    bad(
        "backend == kDagDp cannot serve keep_pairs == kAll (the DP never "
        "materializes the pair set; use kTopK or kWorstOnly)");
  }
}

bool disparity_uses_truncation(const DisparityOptions& opt) {
  return opt.truncation == JointTruncation::kAlways ||
         (opt.truncation == JointTruncation::kAuto &&
          opt.method == DisparityMethod::kForkJoin);
}

void apply_keep_pairs(std::vector<PairDisparity>& pairs,
                      const DisparityOptions& opt) {
  if (opt.keep_pairs == KeepPairs::kAll || pairs.empty()) return;
  const auto better = [](const PairDisparity& p, const PairDisparity& q) {
    if (p.bound != q.bound) return q.bound < p.bound;
    if (p.chain_a != q.chain_a) return p.chain_a < q.chain_a;
    return p.chain_b < q.chain_b;
  };
  if (opt.keep_pairs == KeepPairs::kWorstOnly) {
    PairDisparity best = pairs.front();
    for (const PairDisparity& p : pairs) {
      if (better(p, best)) best = p;
    }
    pairs.assign(1, best);
    return;
  }
  const std::size_t k = std::min(opt.top_k, pairs.size());
  std::partial_sort(pairs.begin(),
                    pairs.begin() + static_cast<std::ptrdiff_t>(k),
                    pairs.end(), better);
  pairs.resize(k);
  pairs.shrink_to_fit();
}

Duration pair_disparity_bound_from(const TaskGraph& g, const Path& a,
                                   const Path& b,
                                   const BackwardBounds& full_a,
                                   const BackwardBounds& full_b,
                                   const DisparityOptions& opt,
                                   const BackwardBoundsFn& bounds) {
  const bool truncate = disparity_uses_truncation(opt);
  if (opt.method == DisparityMethod::kIndependent && !truncate) {
    return pdiff_from_bounds(g, a, b, full_a, full_b);
  }
  if (structure_free(a, b)) {
    return pdiff_from_bounds(g, a, b, full_a, full_b);
  }

  const Path* la = &a;
  const Path* lb = &b;
  Path ta, tb;
  if (truncate) {
    std::tie(ta, tb) = truncate_at_last_joint(a, b);
    CETA_ASSERT(ta != tb,
                "pair_disparity_bound: distinct chains truncated to equal");
    la = &ta;
    lb = &tb;
  }
  if (opt.method == DisparityMethod::kIndependent) {
    return pdiff_pair_bound(g, *la, *lb, opt.hop_method, bounds);
  }
  // S-diff: Theorem 2, clamped by Theorem 1 (on the same truncated chains
  // and on the full chains).  All three are safe bounds; Theorem 2 alone
  // is not formally guaranteed to dominate pointwise — its sub-chain
  // decomposition re-counts response-time slack at every joint and can
  // exceed Theorem 1 by O(R) in rare instances — and the clamp keeps the
  // reported S-diff <= P-diff by construction.
  Duration best = sdiff_pair_bound(g, *la, *lb, opt.hop_method, bounds).bound;
  best = std::min(best, pdiff_pair_bound(g, *la, *lb, opt.hop_method, bounds));
  best = std::min(best, pdiff_from_bounds(g, a, b, full_a, full_b));
  return best;
}

std::pair<Path, Path> truncate_at_last_joint(const Path& a, const Path& b) {
  CETA_EXPECTS(!a.empty() && !b.empty(), "truncate_at_last_joint: empty");
  CETA_EXPECTS(a.back() == b.back(),
               "truncate_at_last_joint: chains must end at the same task");
  // Length of the maximal common suffix.
  std::size_t s = 0;
  while (s < a.size() && s < b.size() &&
         a[a.size() - 1 - s] == b[b.size() - 1 - s]) {
    ++s;
  }
  CETA_ASSERT(s >= 1, "truncate_at_last_joint: no common suffix");
  // Keep everything up to and including the first task of that suffix.
  Path ta(a.begin(), a.end() - static_cast<std::ptrdiff_t>(s - 1));
  Path tb(b.begin(), b.end() - static_cast<std::ptrdiff_t>(s - 1));
  return {std::move(ta), std::move(tb)};
}

Duration pair_disparity_bound(const TaskGraph& g, const Path& a,
                              const Path& b, const ResponseTimeMap& rtm,
                              const DisparityOptions& opt) {
  CETA_EXPECTS(a != b, "pair_disparity_bound: chains must differ");
  const BackwardBounds full_a = backward_bounds(g, a, rtm, opt.hop_method);
  const BackwardBounds full_b = backward_bounds(g, b, rtm, opt.hop_method);
  return pair_disparity_bound_from(g, a, b, full_a, full_b, opt,
                                   direct_bounds(g, rtm));
}

DisparityReport analyze_time_disparity(const TaskGraph& g, TaskId task,
                                       const ResponseTimeMap& rtm,
                                       const DisparityOptions& opt) {
  CETA_EXPECTS(task < g.num_tasks(), "analyze_time_disparity: bad task id");
  opt.validate();
  obs::Span span("disparity", "analyze_time_disparity");
  span.arg("task", static_cast<std::int64_t>(task));
  static obs::Counter& runs =
      obs::MetricsRegistry::global().counter("disparity.analyses");
  static obs::Counter& pairs_counter =
      obs::MetricsRegistry::global().counter("disparity.pairs");
  runs.add();
  DisparityReport report;
  report.worst_case = Duration::zero();
  report.chains = enumerate_source_chains(g, task, opt.path_cap);
  report.chain_count = report.chains.size();

  const std::size_t n = report.chains.size();
  std::vector<BackwardBounds> full;
  full.reserve(n);
  for (const Path& c : report.chains) {
    full.push_back(backward_bounds(g, c, rtm, opt.hop_method));
  }

  const BackwardBoundsFn bounds = direct_bounds(g, rtm);
  report.pairs.reserve(n < 2 ? 0 : n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const Duration bound =
          pair_disparity_bound_from(g, report.chains[i], report.chains[j],
                                    full[i], full[j], opt, bounds);
      report.pairs.push_back(PairDisparity{i, j, bound});
      report.worst_case = std::max(report.worst_case, bound);
    }
  }
  span.arg("chains", static_cast<std::int64_t>(n));
  pairs_counter.add(report.pairs.size());
  apply_keep_pairs(report.pairs, opt);
  return report;
}

}  // namespace ceta
