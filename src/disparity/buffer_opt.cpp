#include "disparity/buffer_opt.hpp"

#include "common/error.hpp"
#include "common/math.hpp"
#include "obs/tracer.hpp"

namespace ceta {

namespace {

/// Algorithm 1 proper, starting from a computed Theorem 2 result.  Single
/// source of truth for both design_buffer overloads.
BufferDesign design_from_forkjoin(const TaskGraph& g, const Path& lambda,
                                  const Path& nu, const ForkJoinBound& fj) {
  BufferDesign d;
  d.baseline_bound = fj.bound;
  d.optimized_bound = fj.bound;
  d.window_lambda = fj.window_lambda;
  d.window_nu = fj.window_nu;
  d.shift = Duration::zero();

  // Midpoint comparison in doubled coordinates (midpoints can be
  // half-integral nanoseconds): M2 = A + B.
  const std::int64_t m2_lambda = fj.window_lambda.doubled_midpoint();
  const std::int64_t m2_nu = fj.window_nu.doubled_midpoint();

  const bool on_lambda = m2_lambda >= m2_nu;
  const Path& chosen = on_lambda ? lambda : nu;
  d.buffer_on_lambda = on_lambda;

  if (chosen.size() < 2) {
    // The analyzed task is itself the source of the chosen chain; there is
    // no channel to buffer.  Keep the trivial design.
    d.from = d.to = chosen.front();
    return d;
  }
  d.from = chosen[0];
  d.to = chosen[1];
  CETA_EXPECTS(g.channel(d.from, d.to).buffer_size == 1,
               "design_buffer: head channel already buffered; design "
               "assumes the base (size-1) configuration");

  const Duration t_head = g.task(chosen.front()).period;
  const std::int64_t diff2 =
      on_lambda ? m2_lambda - m2_nu : m2_nu - m2_lambda;
  // floor((M_right − M_left) / T) computed on doubled values.
  const std::int64_t k = floor_div(diff2, 2 * t_head.count());
  CETA_ASSERT(k >= 0, "design_buffer: negative shift multiplier");

  d.buffer_size = static_cast<int>(k) + 1;
  d.shift = t_head * k;

  // Theorem 3: the Theorem 2 bound (including its shared-source flooring)
  // drops by exactly L.
  d.optimized_bound = d.baseline_bound - d.shift;
  return d;
}

}  // namespace

BufferDesign design_buffer(const TaskGraph& g, const Path& lambda,
                           const Path& nu, const ResponseTimeMap& rtm,
                           HopBoundMethod method) {
  obs::Span span("disparity", "design_buffer");
  return design_from_forkjoin(g, lambda, nu,
                              sdiff_pair_bound(g, lambda, nu, rtm, method));
}

BufferDesign design_buffer(const TaskGraph& g, const Path& lambda,
                           const Path& nu, HopBoundMethod method,
                           const BackwardBoundsFn& bounds) {
  obs::Span span("disparity", "design_buffer");
  return design_from_forkjoin(
      g, lambda, nu, sdiff_pair_bound(g, lambda, nu, method, bounds));
}

void apply_buffer_design(TaskGraph& g, const BufferDesign& design) {
  if (design.buffer_size <= 1) return;
  g.set_buffer_size(design.from, design.to, design.buffer_size);
}

}  // namespace ceta
