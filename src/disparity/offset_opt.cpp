#include "disparity/offset_opt.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/algorithms.hpp"

namespace ceta {

OffsetPlan plan_source_offsets(const TaskGraph& g, TaskId task,
                               const OffsetPlanOptions& opt) {
  CETA_EXPECTS(task < g.num_tasks(), "plan_source_offsets: bad task id");
  CETA_EXPECTS(opt.granularity > Duration::zero(),
               "plan_source_offsets: granularity must be positive");
  CETA_EXPECTS(opt.passes >= 1, "plan_source_offsets: need >= 1 pass");

  TaskGraph work = g;
  OffsetPlan plan;
  plan.baseline =
      exact_let_disparity(work, task, opt.path_cap, opt.max_releases)
          .worst_disparity;
  plan.optimized = plan.baseline;
  ++plan.evaluations;

  // The tunable coordinates.
  std::vector<TaskId> tunables;
  for (const TaskId id : ancestors(g, task)) {
    if (g.is_source(id) ||
        opt.tunables == OffsetTunables::kAllClosureTasks) {
      tunables.push_back(id);
    }
  }

  for (int pass = 0; pass < opt.passes && plan.optimized > Duration::zero();
       ++pass) {
    bool improved = false;
    for (const TaskId src : tunables) {
      Task& t = work.task(src);
      const Duration original = t.offset;
      Duration best_offset = original;
      Duration best = plan.optimized;
      for (Duration cand = Duration::zero(); cand < t.period;
           cand += opt.granularity) {
        if (cand == original) continue;
        t.offset = cand;
        const Duration d =
            exact_let_disparity(work, task, opt.path_cap, opt.max_releases)
                .worst_disparity;
        ++plan.evaluations;
        if (opt.fault_fail_after_evaluations != 0 &&
            plan.evaluations >= opt.fault_fail_after_evaluations) {
          throw Error("plan_source_offsets: injected offset-sweep fault");
        }
        if (d < best) {
          best = d;
          best_offset = cand;
        }
      }
      t.offset = best_offset;
      if (best < plan.optimized) {
        plan.optimized = best;
        improved = true;
      }
    }
    if (!improved) break;
  }

  for (const TaskId src : tunables) {
    plan.offsets.push_back(OffsetAssignment{src, work.task(src).offset});
  }
  return plan;
}

void apply_offset_plan(TaskGraph& g, const OffsetPlan& plan) {
  for (const OffsetAssignment& a : plan.offsets) {
    g.task(a.task).offset = a.offset;
  }
}

}  // namespace ceta
