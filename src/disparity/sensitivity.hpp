// Parameter sensitivity of a task's worst-case time disparity bound.
//
// §IV's motivating observation (Fig. 4) is that the "obvious" knob —
// sampling a middle task faster — often does not move the worst case at
// all, because the disparity is governed by the WCBT of one chain against
// the BCBT of another.  This module quantifies that: it perturbs each
// ancestor task's period (faster sampling) and WCET (lighter execution)
// in isolation, re-runs the scheduling + disparity analysis, and ranks
// the parameters by how much the bound moves.  Designers attack the top
// of the list (or, when the whole list is flat, reach for the §IV buffer
// design instead).

#pragma once

#include <vector>

#include "disparity/analyzer.hpp"
#include "graph/task_graph.hpp"

namespace ceta {

/// Which parameter a sensitivity probe perturbed.
enum class PerturbedParam {
  kPeriod,  ///< period scaled by period_factor (default: 2x faster)
  kWcet,    ///< WCET scaled by wcet_factor (BCET clamped to stay <= WCET)
};

/// Knobs of disparity_sensitivity.
struct SensitivityOptions {
  /// Multiplier applied to a task's period (default 0.5 = double rate).
  double period_factor = 0.5;
  /// Multiplier applied to a task's WCET (default 0.5 = half the work).
  double wcet_factor = 0.5;
  DisparityOptions disparity;  ///< analyzer options for both bounds
  RtaOptions rta;              ///< RTA options for the re-analysis
};

/// One (task, parameter) probe of the sensitivity scan.
struct SensitivityEntry {
  TaskId task = 0;                                ///< perturbed task
  PerturbedParam param = PerturbedParam::kPeriod;  ///< perturbed knob
  /// Bound before / after the perturbation; `schedulable` is false when
  /// the perturbed system lost schedulability (perturbed then meaningless).
  Duration baseline;        ///< bound with original parameters
  Duration perturbed;       ///< bound with the perturbation applied
  bool schedulable = true;  ///< perturbed system still schedulable?

  /// perturbed − baseline (negative = the perturbation helps).
  Duration delta() const { return perturbed - baseline; }
};

/// Sensitivity of `task`'s S-diff bound to every ancestor's period and
/// WCET, sorted by |delta| descending (unschedulable entries last).
/// Source WCETs are zero and are skipped.
std::vector<SensitivityEntry> disparity_sensitivity(
    const TaskGraph& g, TaskId task, const SensitivityOptions& opt = {});

}  // namespace ceta
