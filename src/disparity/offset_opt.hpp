// Offset synthesis for deterministic LET systems.
//
// In a fully LET ancestor closure the disparity is an exact function of
// the release offsets (see disparity/exact.hpp), which turns §IV's
// problem on its head: instead of buffering channels, *plan the release
// phases*.  This module runs coordinate descent over the tunable offsets —
// sweeping each one over [0, T) on a grid and keeping the argmin of the
// exact disparity.  The achievable floor is the staleness quantization of
// the coarsest-period hop on any chain; when the analyzed task's period
// lattice is harmonic down to that hop, the floor is reached without any
// buffer memory.
//
// Complementary to buffers: offsets need control over sensor phases
// (possible with time-triggered buses / synchronized clocks), buffers
// only need memory.

#pragma once

#include <vector>

#include "disparity/exact.hpp"
#include "graph/task_graph.hpp"

namespace ceta {

/// Which offsets the planner may move.  Under LET every closure task's
/// offset is a schedule-table parameter, and middle-task phases matter as
/// much as sensor phases (each LET hop re-quantizes the data onto the
/// consumer's release grid); restricting to sources models systems where
/// only the sensors are phase-controllable.
enum class OffsetTunables { kAllClosureTasks, kSourcesOnly };

/// Knobs of plan_source_offsets.
struct OffsetPlanOptions {
  /// Which offsets the coordinate descent may move.
  OffsetTunables tunables = OffsetTunables::kAllClosureTasks;
  /// Offset grid step for the sweep; must be positive.  1 ms matches the
  /// WATERS period lattice.
  Duration granularity = Duration::ms(1);
  /// Coordinate-descent passes over the tunable tasks.
  int passes = 2;
  /// Chain-enumeration capacity (CapacityError beyond).
  std::size_t path_cap = kDefaultPathCap;
  /// Exact-oracle release cap per evaluation (CapacityError beyond).
  std::size_t max_releases = 1'000'000;
  /// TEST ONLY — throw a planted ceta::Error("injected offset-sweep
  /// fault") once this many exact-oracle evaluations have run (0 = never).
  /// Exists so the mid-sweep rollback path of the engine overload
  /// (engine/incremental.cpp) can be exercised deterministically: tests
  /// assert the planted message survives the offset restore verbatim.
  /// Honored identically by the free function, preserving the
  /// bit-identical contract between the two forms.  Never set in
  /// production code.
  std::size_t fault_fail_after_evaluations = 0;
};

/// One tuned offset of an OffsetPlan.
struct OffsetAssignment {
  TaskId task = 0;  ///< the task whose offset was planned
  Duration offset;  ///< planned release offset, in [0, T)
};

/// Result of plan_source_offsets.
struct OffsetPlan {
  /// Exact disparity before / after the synthesis.
  Duration baseline;
  Duration optimized;  ///< exact disparity under the planned offsets
  /// The tuned offsets of the optimized assignment.
  std::vector<OffsetAssignment> offsets;
  /// Number of exact evaluations performed.
  std::size_t evaluations = 0;
};

/// Plan release offsets minimizing the exact worst-case disparity of
/// `task`.  Same preconditions as exact_let_disparity.  The input graph
/// is not modified; apply with apply_offset_plan.
OffsetPlan plan_source_offsets(const TaskGraph& g, TaskId task,
                               const OffsetPlanOptions& opt = {});

/// Write a plan's offsets into the graph.
void apply_offset_plan(TaskGraph& g, const OffsetPlan& plan);

}  // namespace ceta
