#include "disparity/multi_buffer.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "chain/backward_bounds.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "obs/tracer.hpp"

namespace ceta {

MultiBufferDesign design_buffers_for_task(const TaskGraph& g, TaskId task,
                                          const ResponseTimeMap& rtm,
                                          const DisparityOptions& opt) {
  obs::Span span("disparity", "design_buffers_for_task");
  span.arg("task", static_cast<std::int64_t>(task));
  MultiBufferDesign design;
  const DisparityReport base = analyze_time_disparity(g, task, rtm, opt);
  design.baseline_bound = base.worst_case;
  design.optimized_bound = base.worst_case;
  if (base.chains.size() < 2) return design;

  // Group chains by head channel; a group's window midpoint summary is
  // the mean of its members' (doubled) midpoints under Lemma 1 windows
  // anchored at r(J) = 0.
  struct Group {
    TaskId from;
    TaskId to;
    double sum_m2 = 0.0;
    int members = 0;
  };
  std::map<std::pair<TaskId, TaskId>, Group> groups;
  for (const Path& chain : base.chains) {
    if (chain.size() < 2) continue;  // the task itself is a source
    const BackwardBounds b = backward_bounds(g, chain, rtm, opt.hop_method);
    const Interval window(-b.wcbt, -b.bcbt);
    const auto key = std::make_pair(chain[0], chain[1]);
    Group& grp = groups
                     .try_emplace(key, Group{chain[0], chain[1], 0.0, 0})
                     .first->second;
    grp.sum_m2 += static_cast<double>(window.doubled_midpoint());
    ++grp.members;
  }
  if (groups.size() < 2) return design;

  double target_m2 = 0.0;
  bool first = true;
  for (const auto& [key, grp] : groups) {
    const double m2 = grp.sum_m2 / grp.members;
    if (first || m2 < target_m2) {
      target_m2 = m2;
      first = false;
    }
  }

  TaskGraph buffered = g;
  std::vector<ChannelBuffer> channels;
  for (const auto& [key, grp] : groups) {
    CETA_EXPECTS(g.channel(grp.from, grp.to).buffer_size == 1,
                 "design_buffers_for_task: head channel '" +
                     g.task(grp.from).name + "->" + g.task(grp.to).name +
                     "' already buffered");
    const double m2 = grp.sum_m2 / grp.members;
    const Duration t_head = g.task(grp.from).period;
    const auto k = static_cast<std::int64_t>(
        std::floor((m2 - target_m2) / (2.0 * static_cast<double>(t_head.count()))));
    if (k <= 0) continue;
    ChannelBuffer cb;
    cb.from = grp.from;
    cb.to = grp.to;
    cb.buffer_size = static_cast<int>(k) + 1;
    cb.shift = t_head * k;
    buffered.set_buffer_size(cb.from, cb.to, cb.buffer_size);
    channels.push_back(cb);
  }
  if (channels.empty()) return design;

  // Safe optimized bound: re-analyze the buffered graph (Lemma 6-aware
  // chain bounds).  Keep the design only if it actually helps.
  const Duration optimized =
      analyze_time_disparity(buffered, task, rtm, opt).worst_case;
  if (optimized >= design.baseline_bound) return design;
  design.channels = std::move(channels);
  design.optimized_bound = optimized;
  return design;
}

void apply_multi_buffer_design(TaskGraph& g,
                               const MultiBufferDesign& design) {
  for (const ChannelBuffer& cb : design.channels) {
    g.set_buffer_size(cb.from, cb.to, cb.buffer_size);
  }
}

}  // namespace ceta
