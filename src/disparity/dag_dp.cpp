#include "disparity/dag_dp.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chain/backward_bounds.hpp"
#include "common/error.hpp"
#include "common/math.hpp"
#include "disparity/pair_kernel.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ceta {

namespace {

std::uint8_t sat2(unsigned x) {
  return static_cast<std::uint8_t>(x >= 2 ? 2 : x);
}
std::uint8_t sat3(unsigned x) {
  return static_cast<std::uint8_t>(x >= 3 ? 3 : x);
}

/// Top-2 maxima of one per-chain functional over a chain multiset, with
/// the achiever count of the maximum (saturated at 2 — "unique or not" is
/// all the distinct-pair corner needs) and witness sources.  v2 is the
/// best value *strictly below* v1, so "max excluding one achiever of v1"
/// is v1 when c1 >= 2 and v2 otherwise; t1 witnesses a second distinct
/// achiever of v1 when one exists (s2 cannot serve — it witnesses the
/// second-best *value*, not a tie).  Closed under per-edge shifts and
/// under merging, which is what makes the DP go.
struct Best2 {
  Duration v1 = Duration::zero();
  Duration v2 = Duration::zero();
  TaskId s1 = 0;  ///< witness source of an achiever of v1
  TaskId s2 = 0;  ///< witness source of an achiever of v2
  TaskId t1 = 0;  ///< source of a second distinct achiever of v1 (c1 >= 2)
  std::uint8_t c1 = 0;  ///< achievers of v1, saturated at 2; 0 = empty
  bool has2 = false;

  void init(Duration v, TaskId s) {
    v1 = v;
    s1 = s;
    c1 = 1;
    has2 = false;
  }
  void shift(Duration d) {
    v1 += d;
    if (has2) v2 += d;
  }
  void offer_second(Duration v, TaskId s) {
    if (!has2 || v > v2) {
      v2 = v;
      s2 = s;
      has2 = true;
    }
  }
  /// Fold in an achiever set: `cnt` chains of value v witnessed by source
  /// s, with `tie` the second-achiever witness when cnt >= 2.
  void offer(Duration v, TaskId s, std::uint8_t cnt, TaskId tie) {
    if (c1 == 0) {
      v1 = v;
      s1 = s;
      c1 = cnt;
      t1 = tie;
      return;
    }
    if (v > v1) {
      offer_second(v1, s1);
      v1 = v;
      s1 = s;
      c1 = cnt;
      t1 = tie;
    } else if (v == v1) {
      // The offered chains are distinct from the incumbent witness chain,
      // so any of them serves as the second-achiever witness.
      t1 = s;
      c1 = sat2(static_cast<unsigned>(c1) + cnt);
    } else {
      offer_second(v, s);
    }
  }
  void merge(const Best2& o) {
    if (o.c1 == 0) return;
    offer(o.v1, o.s1, o.c1, o.t1);
    if (o.has2) offer_second(o.v2, o.s2);
  }
};

/// Aggregates of one finalized (or class-L) chain set: top-2 of W, top-2
/// of −B, the number of chains achieving both maxima jointly (the
/// distinct-pair corner needs to know whether the W-maximizer and the
/// B-minimizer can be chosen distinct), the chain count (saturated at 3 —
/// only "0 / 1 / at least 2" matters), and the invariant witness
/// max(B − W) (Theorem 1 requires bcbt <= wcbt per chain; see
/// sampling_window, which states the same precondition).
struct ClassAgg {
  Best2 w;   ///< max over W(π)
  Best2 nb;  ///< max over −B(π)
  Duration fbw = Duration::zero();  ///< max over B(π) − W(π)
  std::uint8_t both = 0;  ///< joint achievers of (w.v1, nb.v1), sat 2
  std::uint8_t cnt = 0;   ///< chains, sat 3

  bool empty() const { return cnt == 0; }
  void merge(const ClassAgg& o) {
    if (o.empty()) return;
    if (empty()) {
      *this = o;
      return;
    }
    const Duration w1 = std::max(w.v1, o.w.v1);
    const Duration b1 = std::max(nb.v1, o.nb.v1);
    unsigned joint = 0;
    if (w.v1 == w1 && nb.v1 == b1) joint += both;
    if (o.w.v1 == w1 && o.nb.v1 == b1) joint += o.both;
    w.merge(o.w);
    nb.merge(o.nb);
    fbw = std::max(fbw, o.fbw);
    both = sat2(joint);
    cnt = sat3(static_cast<unsigned>(cnt) + o.cnt);
  }
};

/// Class-I ("all-implicit so far") aggregates.  B(π) of an all-implicit
/// chain is Σ bcet − R(tail) + Σ fifo_lower (Lemma 5) but a LET task later
/// in the chain switches it to the per-hop mixed branch, so until the
/// class is decided both B currencies are carried: nbb is the negated
/// bcet-currency partial, nbm the negated mixed-currency partial (W is
/// currency-independent).  fb/fm are the per-currency invariant
/// witnesses max(B − W).
struct ClassIAgg {
  Best2 w;
  Best2 nbb;  ///< max over −(Σ bcet + Σ fifo_lower)
  Best2 nbm;  ///< max over −(Σ per-hop b-terms + Σ fifo_lower)
  Duration fb = Duration::zero();  ///< max over (bcet-currency B) − W
  Duration fm = Duration::zero();  ///< max over (mixed-currency B) − W
  std::uint8_t both_b = 0;  ///< joint achievers of (w.v1, nbb.v1), sat 2
  std::uint8_t both_m = 0;  ///< joint achievers of (w.v1, nbm.v1), sat 2
  std::uint8_t cnt = 0;

  bool empty() const { return cnt == 0; }
  void merge(const ClassIAgg& o) {
    if (o.empty()) return;
    if (empty()) {
      *this = o;
      return;
    }
    const Duration w1 = std::max(w.v1, o.w.v1);
    const Duration bb1 = std::max(nbb.v1, o.nbb.v1);
    const Duration bm1 = std::max(nbm.v1, o.nbm.v1);
    unsigned joint_b = 0;
    unsigned joint_m = 0;
    if (w.v1 == w1 && nbb.v1 == bb1) joint_b += both_b;
    if (o.w.v1 == w1 && o.nbb.v1 == bb1) joint_b += o.both_b;
    if (w.v1 == w1 && nbm.v1 == bm1) joint_m += both_m;
    if (o.w.v1 == w1 && o.nbm.v1 == bm1) joint_m += o.both_m;
    w.merge(o.w);
    nbb.merge(o.nbb);
    nbm.merge(o.nbm);
    fb = std::max(fb, o.fb);
    fm = std::max(fm, o.fm);
    both_b = sat2(joint_b);
    both_m = sat2(joint_m);
    cnt = sat3(static_cast<unsigned>(cnt) + o.cnt);
  }
};

/// DP state of one (task, key) slot — key is the chain's source in
/// per-source mode, 0 in global mode.
struct NodeState {
  ClassIAgg ci;
  ClassAgg cl;
};

/// Per-edge extension constants — independent of the source, so they are
/// computed once per cone edge, not once per (edge, source).
struct EdgeTerms {
  Duration dw;    ///< θ(p,v) + fifo_upper(p,v): shift of W
  Duration dnbb;  ///< −(bcet(v) + fifo_lower(p,v)): shift of nbb
  Duration dnbm;  ///< −(b-term(p,v) + fifo_lower(p,v)): shift of nbm
};

EdgeTerms edge_terms(const TaskGraph& g, TaskId p, TaskId v,
                     const ResponseTimeMap& rtm, HopBoundMethod method) {
  const Task& u = g.task(p);
  const Task& w = g.task(v);
  Duration fifo_up = Duration::zero();
  Duration fifo_lo = Duration::zero();
  const int n = g.channel(p, v).buffer_size;
  if (n > 1) {
    fifo_up = u.period * (n - 1) + u.jitter;
    fifo_lo = u.period * (n - 1) - u.jitter;
  }
  // Mirror of bcbt_bound's mixed-branch per-hop term.
  Duration b;
  if (g.is_source(p)) {
    b = Duration::zero();
  } else if (u.comm == CommSemantics::kLet) {
    b = u.period;
  } else {
    b = u.bcet;
  }
  if (w.comm != CommSemantics::kLet) {
    b -= rtm[v] - w.bcet;  // read delay of the consumer
  }
  return EdgeTerms{hop_bound(g, p, v, rtm, method) + fifo_up,
                   -(w.bcet + fifo_lo), -(b + fifo_lo)};
}

/// Ancestor cone of the sink plus the path-count structure on it.
struct ConeInfo {
  std::vector<TaskId> topo;  ///< cone tasks in topological order
  std::vector<bool> in_cone;
  std::size_t num_sources = 0;
  std::size_t chain_count = 0;
  bool count_saturated = false;
  /// No non-sink cone task lies on two distinct source chains
  /// (up[u]·down[u] == 1 everywhere): every chain pair is structure-free.
  bool joint_free = true;
};

ConeInfo build_cone(const TaskGraph& g, TaskId sink,
                    const ResponseTimeMap& rtm) {
  const std::size_t n = g.num_tasks();
  ConeInfo c;
  c.in_cone.assign(n, false);
  // Reverse reachability from the sink.
  std::vector<TaskId> stack{sink};
  c.in_cone[sink] = true;
  while (!stack.empty()) {
    const TaskId u = stack.back();
    stack.pop_back();
    for (TaskId p : g.predecessors(u)) {
      if (!c.in_cone[p]) {
        c.in_cone[p] = true;
        stack.push_back(p);
      }
    }
  }
  for (TaskId id : g.topological_order()) {
    if (c.in_cone[id]) c.topo.push_back(id);
  }
  // Saturating source→u path counts (up) and u→sink counts (down); any
  // saturated intermediate poisons dependents, mirroring
  // count_source_chains_checked.
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> up(n, 0);
  std::vector<std::size_t> down(n, 0);
  std::vector<bool> up_sat(n, false);
  std::vector<bool> down_sat(n, false);
  for (TaskId u : c.topo) {
    CETA_EXPECTS(rtm[u] != Duration::max(),
                 "dag_dp: task '" + g.task(u).name +
                     "' has no finite WCRT (unschedulable?)");
    if (g.is_source(u)) {
      up[u] = 1;
      ++c.num_sources;
      continue;
    }
    std::size_t total = 0;
    bool sat = false;
    for (TaskId p : g.predecessors(u)) {
      if (up_sat[p]) sat = true;
      if (up[p] > kMax - total) {
        total = kMax;
        sat = true;
        break;
      }
      total += up[p];
    }
    up[u] = sat ? kMax : total;
    up_sat[u] = sat;
  }
  c.chain_count = up[sink];
  c.count_saturated = up_sat[sink];
  for (auto it = c.topo.rbegin(); it != c.topo.rend(); ++it) {
    const TaskId u = *it;
    if (u == sink) {
      down[u] = 1;
      continue;
    }
    std::size_t total = 0;
    bool sat = false;
    for (TaskId s : g.successors(u)) {
      if (!c.in_cone[s]) continue;
      if (down_sat[s]) sat = true;
      if (down[s] > kMax - total) {
        total = kMax;
        sat = true;
        break;
      }
      total += down[s];
    }
    down[u] = sat ? kMax : total;
    down_sat[u] = sat;
  }
  for (TaskId u : c.topo) {
    if (u == sink) continue;
    if (up[u] != 1 || up_sat[u] || down[u] != 1 || down_sat[u]) {
      c.joint_free = false;
      break;
    }
  }
  return c;
}

/// Finalized per-key aggregates at the sink (key = source id in
/// per-source mode, 0 in global mode), sorted by key.
struct DpOutcome {
  bool within_budget = true;
  std::vector<std::pair<TaskId, ClassAgg>> final_aggs;
};

DpOutcome run_dp(const TaskGraph& g, TaskId sink, const ResponseTimeMap& rtm,
                 HopBoundMethod method, const ConeInfo& cone, bool per_source,
                 std::size_t state_budget) {
  const std::size_t n = g.num_tasks();
  DpOutcome out;
  std::vector<std::vector<std::pair<TaskId, NodeState>>> state(n);
  // Cone successors not yet consumed — a predecessor's state is freed the
  // moment its last cone successor has pulled from it, keeping the live
  // frontier (not the whole cone) resident.
  std::vector<std::size_t> succ_left(n, 0);
  for (TaskId u : cone.topo) {
    for (TaskId s : g.successors(u)) {
      if (cone.in_cone[s]) ++succ_left[u];
    }
  }
  std::size_t live = 0;
  std::unordered_map<TaskId, NodeState> acc;
  for (TaskId v : cone.topo) {
    acc.clear();
    if (g.is_source(v)) {
      // The singleton chain {v}: zero hops, W = 0, both B partials hold
      // only the head's contribution (bcet for the Lemma 5 currency,
      // nothing for the per-hop currency).
      NodeState& s0 = acc[per_source ? v : 0];
      s0.ci.cnt = 1;
      s0.ci.w.init(Duration::zero(), v);
      s0.ci.nbb.init(-g.task(v).bcet, v);
      s0.ci.nbm.init(Duration::zero(), v);
      s0.ci.fb = g.task(v).bcet;
      s0.ci.fm = Duration::zero();
      s0.ci.both_b = 1;
      s0.ci.both_m = 1;
    }
    // v is never a source below (it has predecessors), so v LET means the
    // class-I → class-L transition fires on this extension.
    const bool v_let = g.task(v).comm == CommSemantics::kLet;
    for (TaskId p : g.predecessors(v)) {
      const EdgeTerms e = edge_terms(g, p, v, rtm, method);
      for (const auto& [src, ns] : state[p]) {
        NodeState& slot = acc[per_source ? src : 0];
        if (!ns.ci.empty()) {
          ClassIAgg t = ns.ci;
          t.w.shift(e.dw);
          t.nbb.shift(e.dnbb);
          t.nbm.shift(e.dnbm);
          t.fb += -e.dnbb - e.dw;  // δB − δW in the bcet currency
          t.fm += -e.dnbm - e.dw;
          if (v_let) {
            ClassAgg l;
            l.w = t.w;
            l.nb = t.nbm;
            l.fbw = t.fm;
            l.both = t.both_m;
            l.cnt = t.cnt;
            slot.cl.merge(l);
          } else {
            slot.ci.merge(t);
          }
        }
        if (!ns.cl.empty()) {
          ClassAgg t = ns.cl;
          t.w.shift(e.dw);
          t.nb.shift(e.dnbm);
          t.fbw += -e.dnbm - e.dw;
          slot.cl.merge(t);
        }
      }
      if (--succ_left[p] == 0) {
        live -= state[p].size();
        state[p].clear();
        state[p].shrink_to_fit();
      }
    }
    auto& sv = state[v];
    sv.assign(acc.begin(), acc.end());
    std::sort(sv.begin(), sv.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    live += sv.size();
    if (live > state_budget) {
      out.within_budget = false;
      return out;
    }
  }
  // Finalize at the sink: the class-I B becomes Σ bcet − R(sink) + Σ
  // fifo_lower (shift −B by +R(sink)), the class-L partial already is the
  // final B; then the two classes merge per key.
  out.final_aggs.reserve(state[sink].size());
  for (const auto& [key, ns] : state[sink]) {
    ClassAgg f;
    if (!ns.ci.empty()) {
      ClassAgg ci_final;
      ci_final.w = ns.ci.w;
      ci_final.nb = ns.ci.nbb;
      ci_final.nb.shift(rtm[sink]);
      ci_final.fbw = ns.ci.fb - rtm[sink];
      ci_final.both = ns.ci.both_b;
      ci_final.cnt = ns.ci.cnt;
      f.merge(ci_final);
    }
    f.merge(ns.cl);
    // Theorem 1's sampling windows require bcbt <= wcbt per chain (the
    // precondition sampling_window states); under it |W(a)−B(b)| never
    // exceeds the swapped-ordering difference, which is what lets the DP
    // track maxima only.  The max(B − W) witness rode along for free.
    CETA_EXPECTS(f.fbw <= Duration::zero(),
                 "dag_dp: backward-bounds invariant bcbt <= wcbt violated "
                 "on a chain of the analyzed task; Theorem 1's sampling "
                 "windows (and this DP) are undefined on such instances");
    out.final_aggs.emplace_back(key, f);
  }
  return out;
}

/// max over *ordered distinct* chain pairs (a, b) of one aggregate's
/// W(a) − B(b).  The corner: when a single chain uniquely achieves both
/// maxima, one side must settle for its second-best.
Duration distinct_pair_max(const ClassAgg& a) {
  CETA_ASSERT(a.cnt >= 2, "dag_dp: pair max over a single chain");
  if (a.w.c1 >= 2 || a.nb.c1 >= 2 || a.both == 0) {
    return a.w.v1 + a.nb.v1;
  }
  CETA_ASSERT(a.w.has2 && a.nb.has2, "dag_dp: corner without second-best");
  return std::max(a.w.v1 + a.nb.v2, a.w.v2 + a.nb.v1);
}

/// Same-source pair bound of one source's aggregate: the distinct-pair
/// max, floored to the source period when the source is jitter-free
/// (Theorem 1's same-source refinement; flooring is monotone, so flooring
/// the max equals the max of the floored pair bounds).
Duration same_source_bound(const TaskGraph& g, TaskId s, const ClassAgg& a) {
  Duration m = distinct_pair_max(a);
  if (g.task(s).jitter == Duration::zero()) {
    m = floor_to_multiple(m, g.task(s).period);
  }
  return m;
}

/// Cross-source pair bound for two specific sources: chains from distinct
/// sources have distinct heads, so no flooring and no distinctness corner.
Duration cross_source_bound(const ClassAgg& a, const ClassAgg& b) {
  return std::max(a.w.v1 + b.nb.v1, b.w.v1 + a.nb.v1);
}

/// Streaming source-pair ranking shared with apply_keep_pairs' contract:
/// bound descending, ties by (source_a, source_b) ascending.
bool source_pair_better(const SourcePairDisparity& p,
                        const SourcePairDisparity& q) {
  if (p.bound != q.bound) return q.bound < p.bound;
  if (p.source_a != q.source_a) return p.source_a < q.source_a;
  return p.source_b < q.source_b;
}

/// Apply KeepPairs to the scanned source-pair candidates.
void keep_source_pairs(std::vector<SourcePairDisparity>& pairs,
                       const DisparityOptions& opt) {
  std::sort(pairs.begin(), pairs.end(), source_pair_better);
  std::size_t keep = pairs.size();
  if (opt.keep_pairs == KeepPairs::kWorstOnly) {
    keep = std::min<std::size_t>(keep, 1);
  } else if (opt.keep_pairs == KeepPairs::kTopK) {
    keep = std::min(keep, opt.top_k);
  }
  pairs.resize(keep);
  pairs.shrink_to_fit();
}

}  // namespace

DisparityReport analyze_time_disparity_dag_dp(const TaskGraph& g, TaskId task,
                                              const ResponseTimeMap& rtm,
                                              const DisparityOptions& opt,
                                              const DagDpOptions& dp) {
  CETA_EXPECTS(task < g.num_tasks(),
               "analyze_time_disparity_dag_dp: bad task id");
  CETA_EXPECTS(rtm.size() == g.num_tasks(),
               "analyze_time_disparity_dag_dp: response-time map size "
               "mismatch");
  opt.validate();
  obs::Span span("disparity", "dag_dp");
  span.arg("task", static_cast<std::int64_t>(task));
  static obs::Counter& runs =
      obs::MetricsRegistry::global().counter("disparity.dagdp.analyses");
  static obs::Counter& global_runs =
      obs::MetricsRegistry::global().counter("disparity.dagdp.global_mode");
  runs.add();

  const ConeInfo cone = build_cone(g, task, rtm);
  span.arg("cone_tasks", static_cast<std::int64_t>(cone.topo.size()));
  span.arg("sources", static_cast<std::int64_t>(cone.num_sources));

  DisparityReport r;
  r.worst_case = Duration::zero();
  r.backend = DisparityBackend::kDagDp;
  r.truncated = true;
  r.chain_count = cone.chain_count;
  r.chain_count_saturated = cone.count_saturated;
  r.exact = true;
  if (!cone.count_saturated && cone.chain_count < 2) {
    return r;  // zero or one chain: no pair, zero disparity, exact
  }

  // Exactness of the pdiff-on-full-chains semantics the DP computes
  // (DESIGN.md §10): structure-free everywhere, or the caller asked for
  // exactly that semantics.
  const bool exact_semantics =
      cone.joint_free || (opt.method == DisparityMethod::kIndependent &&
                          !disparity_uses_truncation(opt));

  DpOutcome res = run_dp(g, task, rtm, opt.hop_method, cone,
                         /*per_source=*/true, dp.state_budget);
  bool global_mode = false;
  if (!res.within_budget) {
    global_runs.add();
    global_mode = true;
    res = run_dp(g, task, rtm, opt.hop_method, cone, /*per_source=*/false,
                 std::numeric_limits<std::size_t>::max());
  }
  r.exact = exact_semantics && !global_mode;
  span.arg("mode", global_mode ? "global" : "per_source");

  const auto& aggs = res.final_aggs;
  CETA_ASSERT(!aggs.empty(), "dag_dp: no aggregates for a task with chains");

  Duration worst = Duration::zero();
  TaskId worst_a = 0;
  TaskId worst_b = 0;
  if (global_mode) {
    // One source-agnostic aggregate; flooring is unavailable (the maximum
    // does not decompose per source), so the bound is relaxed.
    const ClassAgg& a = aggs.front().second;
    const Duration m = distinct_pair_max(a);
    if (m > worst) {
      worst = m;
      // Witness sources travel in the Best2 tags; resolve the corner the
      // same way distinct_pair_max did.
      if (a.w.c1 >= 2 || a.nb.c1 >= 2 || a.both == 0) {
        worst_a = a.w.s1;
        worst_b = a.nb.s1;
      } else if (a.w.v1 + a.nb.v2 >= a.w.v2 + a.nb.v1) {
        worst_a = a.w.s1;
        worst_b = a.nb.s2;
      } else {
        worst_a = a.w.s2;
        worst_b = a.nb.s1;
      }
    }
  } else {
    // Per-source combination: floored same-source terms plus the
    // cross-source term from source-level top-2 aggregation (chains from
    // different sources are automatically distinct).
    Best2 sw;  // per-source max W over sources
    Best2 sb;  // per-source max −B over sources
    for (const auto& [s, a] : aggs) {
      if (a.cnt >= 2) {
        const Duration m = same_source_bound(g, s, a);
        if (m > worst) {
          worst = m;
          worst_a = s;
          worst_b = s;
        }
      }
      sw.offer(a.w.v1, s, 1, 0);
      sb.offer(a.nb.v1, s, 1, 0);
    }
    if (aggs.size() >= 2) {
      Duration cross;
      TaskId ca;
      TaskId cb;
      if (sw.c1 >= 2 || sb.c1 >= 2 || sw.s1 != sb.s1) {
        cross = sw.v1 + sb.v1;
        ca = sw.s1;
        cb = sb.s1;
        if (ca == cb) {
          // One source tops both sides but ties with another source on at
          // least one of them; swap in that tying source's witness.
          if (sw.c1 >= 2) {
            ca = sw.t1;
          } else {
            cb = sb.t1;
          }
        }
      } else {
        // A single source uniquely tops both sides: one side settles for
        // its runner-up source.
        CETA_ASSERT(sw.has2 && sb.has2,
                    "dag_dp: cross corner without second-best");
        if (sw.v1 + sb.v2 >= sw.v2 + sb.v1) {
          cross = sw.v1 + sb.v2;
          ca = sw.s1;
          cb = sb.s2;
        } else {
          cross = sw.v2 + sb.v1;
          ca = sw.s2;
          cb = sb.s1;
        }
      }
      if (cross > worst) {
        worst = cross;
        worst_a = ca;
        worst_b = cb;
      }
    }
  }
  r.worst_case = worst;

  // Source-granularity worst pairs.  When the source count permits, scan
  // all S(S+1)/2 source pairs (O(1) per pair from the aggregates) through
  // the KeepPairs contract; beyond the cap (or in global mode) only the
  // overall worst witness is reported.
  if (!global_mode && aggs.size() <= dp.source_pair_scan_cap) {
    std::vector<SourcePairDisparity>& pairs = r.source_pairs;
    for (std::size_t i = 0; i < aggs.size(); ++i) {
      const auto& [si, ai] = aggs[i];
      if (ai.cnt >= 2) {
        pairs.push_back(
            SourcePairDisparity{si, si, same_source_bound(g, si, ai)});
      }
      for (std::size_t j = i + 1; j < aggs.size(); ++j) {
        const auto& [sj, aj] = aggs[j];
        pairs.push_back(
            SourcePairDisparity{si, sj, cross_source_bound(ai, aj)});
      }
    }
    keep_source_pairs(pairs, opt);
    CETA_ASSERT(pairs.empty() || pairs.front().bound == worst,
                "dag_dp: source-pair scan disagrees with the aggregate "
                "combination");
  } else {
    const TaskId a = std::min(worst_a, worst_b);
    const TaskId b = std::max(worst_a, worst_b);
    r.source_pairs.push_back(SourcePairDisparity{a, b, worst});
  }

  // Test-only fault injection (DagDpOptions::fault_drop_source_period):
  // drop one witness-source period from the final bound so the
  // dag_dp_matches_enumeration verify property must flag the divergence.
  if (dp.fault_drop_source_period && r.worst_case > Duration::zero()) {
    const Duration t = g.task(worst_a).period;
    r.worst_case = std::max(Duration::zero(), r.worst_case - t);
  }
  return r;
}

DisparityReport analyze_time_disparity_backend(const TaskGraph& g, TaskId task,
                                               const ResponseTimeMap& rtm,
                                               const DisparityOptions& opt,
                                               ThreadPool* pool,
                                               const DagDpOptions& dp) {
  opt.validate();
  static obs::Counter& fallbacks =
      obs::MetricsRegistry::global().counter("disparity.dagdp.fallbacks");
  if (opt.backend == DisparityBackend::kEnumerate) {
    return analyze_time_disparity_kernel(g, task, rtm, opt, pool);
  }
  if (opt.backend == DisparityBackend::kAuto) {
    const ChainCount cc = count_source_chains_checked(g, task);
    if (!cc.exceeds(opt.path_cap)) {
      return analyze_time_disparity_kernel(g, task, rtm, opt, pool);
    }
    return analyze_time_disparity_dag_dp(g, task, rtm, opt, dp);
  }
  // kDagDp: run the DP; when its bound would be relaxed and the instance
  // is enumerable, the exact kernel serves instead (the report's backend
  // field records that).
  DisparityReport r = analyze_time_disparity_dag_dp(g, task, rtm, opt, dp);
  if (!r.exact &&
      !ChainCount{r.chain_count, r.chain_count_saturated}.exceeds(
          opt.path_cap)) {
    fallbacks.add();
    return analyze_time_disparity_kernel(g, task, rtm, opt, pool);
  }
  return r;
}

}  // namespace ceta
