#include "disparity/pareto.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "disparity/forkjoin.hpp"

namespace ceta {

std::vector<ParetoPoint> buffer_pareto(const TaskGraph& g, const Path& lambda,
                                       const Path& nu,
                                       const ResponseTimeMap& rtm,
                                       HopBoundMethod method) {
  const BufferDesign design = design_buffer(g, lambda, nu, rtm, method);
  const Duration t_head = g.task(design.from).period;

  std::vector<ParetoPoint> points;
  points.reserve(static_cast<std::size_t>(design.buffer_size));
  for (int n = 1; n <= design.buffer_size; ++n) {
    ParetoPoint p;
    p.buffer_size = n;
    p.shift = t_head * (n - 1);
    // Theorem 3 with a partial shift (still on the aligning side), clamped
    // by the Lemma 6-aware Theorem 2 re-analysis of the buffered graph.
    const Duration analytic = design.baseline_bound - p.shift;
    if (n == 1) {
      p.bound = design.baseline_bound;
    } else {
      TaskGraph buffered = g;
      buffered.set_buffer_size(design.from, design.to, n);
      const Duration rerun =
          sdiff_pair_bound(buffered, lambda, nu, rtm, method).bound;
      p.bound = std::min(analytic, rerun);
    }
    points.push_back(p);
  }
  CETA_ASSERT(!points.empty(), "buffer_pareto: no points");
  CETA_ASSERT(points.back().bound <= design.optimized_bound,
              "buffer_pareto: final point must reach the Algorithm 1 bound");
  return points;
}

}  // namespace ceta
