// Buffer-memory / disparity trade-off for one chain pair.
//
// Algorithm 1 jumps straight to the midpoint-aligning FIFO size, but a
// deployment may have a token-memory budget.  `buffer_pareto` sweeps every
// size from 1 (no buffer) to the Algorithm 1 design and reports the safe
// disparity bound at each step — each intermediate size n shifts the
// window by (n−1)·T(head), and the Theorem 3 argument applies verbatim as
// long as the shift stays at or below the aligning one.  Every point is
// additionally clamped by re-running the Theorem 2 analysis on a buffered
// copy, so each entry is a safe bound on its own.

#pragma once

#include <vector>

#include "disparity/buffer_opt.hpp"
#include "graph/paths.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

/// One point of the memory/disparity trade-off curve.
struct ParetoPoint {
  /// FIFO size on the Algorithm 1 channel (1 = unbuffered).
  int buffer_size = 1;
  /// Window shift (buffer_size − 1) · T(head).
  Duration shift;
  /// Safe worst-case disparity bound at this size.
  Duration bound;
};

/// Bound-vs-buffer-size curve from size 1 up to the Algorithm 1 design
/// (a single point when the windows are already aligned).  Bounds are
/// non-increasing in the buffer size.
std::vector<ParetoPoint> buffer_pareto(const TaskGraph& g, const Path& lambda,
                                       const Path& nu,
                                       const ResponseTimeMap& rtm,
                                       HopBoundMethod method =
                                           HopBoundMethod::kNonPreemptive);

}  // namespace ceta
