// Task-level worst-case time disparity analysis (Definition 2, §III).
//
// The worst-case time disparity of a task τ is bounded by enumerating all
// chains P from a source to τ and maximizing the pairwise bound (Theorem 1
// or Theorem 2) over all pairs.  Following the paper's closing remark of
// §III, each pair is first truncated at its *last joint task* — the start
// of the maximal common suffix — because the immediate backward job chain
// on a common suffix is unique, so both chains reach the same job there
// and contribute zero extra separation.

#pragma once

#include <cstddef>
#include <vector>

#include "chain/backward_bounds.hpp"
#include "disparity/forkjoin.hpp"
#include "disparity/pairwise.hpp"
#include "graph/paths.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

/// Which theorem bounds each chain pair.
enum class DisparityMethod {
  kIndependent,  ///< Theorem 1, "P-diff"
  /// Theorem 2 ("S-diff"), clamped by Theorem 1: both bounds are safe and
  /// Theorem 2 can exceed Theorem 1 by O(WCRT) in rare instances because
  /// its sub-chain decomposition re-counts response-time slack at joints.
  kForkJoin,
};

/// Whether to apply the last-joint truncation (§III closing remark) before
/// the pairwise bound.  kAuto matches the paper's evaluation: Theorem 2
/// ("S-diff") uses it, Theorem 1 ("P-diff") is applied to the full chains
/// — shared suffixes inflating Theorem 1 is precisely the imprecision the
/// paper's S-diff improves on.
enum class JointTruncation { kAuto, kAlways, kNever };

/// Which implementation serves a disparity query.
enum class DisparityBackend {
  /// Route automatically: enumerate when the chain count fits under
  /// DisparityOptions::path_cap, otherwise the DAG dynamic program —
  /// big sinks degrade to summary analysis instead of CapacityError.
  kAuto,
  /// Enumerate the chain set P and run the pairwise kernel.  Exact per
  /// the paper; throws CapacityError beyond path_cap.
  kEnumerate,
  /// DAG dynamic program over per-task path summaries (disparity/
  /// dag_dp.hpp): no chain materialization, with an automatic exact
  /// fallback to the enumerating kernel when joint structure or
  /// truncation demands it and the instance is enumerable.  See
  /// DESIGN.md §10 for the exactness contract.
  kDagDp,
};

/// How much of the O(|P|²) per-pair vector a disparity report
/// materializes.  worst_case is always the maximum over *all* pairs; this
/// only selects which PairDisparity entries are kept.
enum class KeepPairs {
  kAll,        ///< every (i, j) pair, in (i, j)-lexicographic order
  /// Only the single worst pair (ties broken toward the smallest
  /// (chain_a, chain_b)); empty when there are no pairs.
  kWorstOnly,
  /// The top_k largest bounds, sorted by bound descending (ties by
  /// (chain_a, chain_b) ascending).
  kTopK,
};

/// Knobs of the task-level analyzer (and of AnalysisEngine::disparity —
/// every distinct option tuple is a distinct cache entry there).
struct DisparityOptions {
  /// Pairwise bound: Theorem 1 (kIndependent) or Theorem 2 (kForkJoin).
  DisparityMethod method = DisparityMethod::kForkJoin;
  /// Per-hop bound used inside W(π): Lemma 4 or the agnostic baseline.
  HopBoundMethod hop_method = HopBoundMethod::kNonPreemptive;
  /// Cap on |P| (path enumeration); CapacityError beyond it.
  std::size_t path_cap = kDefaultPathCap;
  JointTruncation truncation = JointTruncation::kAuto;
  /// Pair-reporting mode; the kernel streams kWorstOnly/kTopK without
  /// ever materializing the full pair vector.
  KeepPairs keep_pairs = KeepPairs::kAll;
  /// Pairs kept when keep_pairs == kTopK (clamped to the pair count).
  std::size_t top_k = 16;
  /// Which implementation serves the query (see DisparityBackend).
  DisparityBackend backend = DisparityBackend::kAuto;

  /// Reject option tuples no backend can serve: out-of-range enum values,
  /// path_cap == 0, kTopK with top_k == 0, and kDagDp with
  /// KeepPairs::kAll (the DP never materializes the pair set, so "all
  /// pairs" is unsatisfiable by construction; use kTopK or kWorstOnly).
  /// Throws InvalidOptionsError.  The one validation path shared by the
  /// free analyzer, the kernel, the DP backend and AnalysisEngine.
  void validate() const;
};

/// Bound for one chain pair, for reporting.
struct PairDisparity {
  std::size_t chain_a = 0;  ///< indices into DisparityReport::chains
  std::size_t chain_b = 0;  ///< second index; chain_a < chain_b always
  Duration bound;           ///< disparity bound of this pair
};

/// Worst-pair witness at *source* granularity, reported by the DAG-DP
/// backend (which never materializes individual chains): the bound is the
/// maximum over all chain pairs (a from source_a, b from source_b).
/// source_a == source_b describes a pair of distinct chains from one
/// source.  source_a <= source_b always.
struct SourcePairDisparity {
  TaskId source_a = 0;
  TaskId source_b = 0;
  Duration bound;
};

/// Result of analyze_time_disparity / AnalysisEngine::disparity.
struct DisparityReport {
  /// Upper bound on the worst-case time disparity of the analyzed task;
  /// zero when it has fewer than two source chains.
  Duration worst_case;
  /// The enumerated chain set P (each from a source to the task).  Empty
  /// when `truncated` is set (DP-served query: P was never materialized).
  std::vector<Path> chains;
  /// Per-pair bounds: all |chains| choose 2 unordered pairs under
  /// KeepPairs::kAll, a filtered subset otherwise (see KeepPairs for the
  /// exact ordering contract).  Empty when `truncated` is set.
  std::vector<PairDisparity> pairs;
  /// Source-granularity worst pairs (DP-served queries only; empty when
  /// the chain set was enumerated).  Ranked like `pairs`: bound
  /// descending, ties by (source_a, source_b) ascending; KeepPairs
  /// governs how many are kept.
  std::vector<SourcePairDisparity> source_pairs;
  /// Which backend actually served the query — never kAuto; a kDagDp
  /// request that took the exact enumeration fallback reports kEnumerate.
  DisparityBackend backend = DisparityBackend::kEnumerate;
  /// True when worst_case is bit-identical to the paper's enumeration
  /// semantics (always for kEnumerate; for kDagDp see DESIGN.md §10).
  /// False marks a DP-relaxed safe upper bound.
  bool exact = true;
  /// |P|: number of source chains of the analyzed task (saturating; the
  /// DP computes it without enumeration).
  std::size_t chain_count = 0;
  /// True when chain_count saturated at SIZE_MAX (the true count is
  /// larger than representable).
  bool chain_count_saturated = false;
  /// True when the chain set was *not* materialized (`chains`/`pairs`
  /// empty, `source_pairs` filled) — the structured outcome that replaces
  /// a CapacityError throw on graphs beyond path_cap.
  bool truncated = false;
};

/// Bound the worst-case time disparity of `task`.  `rtm` maps every task
/// to a safe WCRT bound (see analyze_response_times); tasks on chains to
/// `task` must have finite WCRTs.
DisparityReport analyze_time_disparity(const TaskGraph& g, TaskId task,
                                       const ResponseTimeMap& rtm,
                                       const DisparityOptions& opt = {});

/// Truncate both chains at the start of their maximal common suffix; both
/// returned chains end at that joint.  Exposed for tests.
std::pair<Path, Path> truncate_at_last_joint(const Path& a, const Path& b);

/// Whether `opt` applies the last-joint truncation before the pairwise
/// bound (kAlways, or kAuto with the fork–join method).  Shared between
/// the reference analyzer and the pairwise kernel.
bool disparity_uses_truncation(const DisparityOptions& opt);

/// Apply DisparityOptions::keep_pairs to a fully materialized pair list
/// (in (i, j)-lexicographic order).  The single ordering contract shared
/// by the reference analyzer and the kernel's streaming accumulators:
/// pairs are ranked by bound descending, ties by (chain_a, chain_b)
/// ascending.
void apply_keep_pairs(std::vector<PairDisparity>& pairs,
                      const DisparityOptions& opt);

/// Bound for a single pair of chains under the given options (after
/// optional truncation).
Duration pair_disparity_bound(const TaskGraph& g, const Path& a,
                              const Path& b, const ResponseTimeMap& rtm,
                              const DisparityOptions& opt = {});

/// Pair bound reusing precomputed *full-chain* backward bounds, with every
/// further (truncated/sub-)chain bound pulled from `bounds`.  This is the
/// shared core of analyze_time_disparity and AnalysisEngine::disparity:
/// the task-level analyzer visits O(|P|²) pairs and must not recompute the
/// full-chain bounds per pair.  `bounds` must agree with `backward_bounds`
/// on g (pass a memoizing provider to amortize across pairs and calls).
Duration pair_disparity_bound_from(const TaskGraph& g, const Path& a,
                                   const Path& b,
                                   const BackwardBounds& full_a,
                                   const BackwardBounds& full_b,
                                   const DisparityOptions& opt,
                                   const BackwardBoundsFn& bounds);

}  // namespace ceta
