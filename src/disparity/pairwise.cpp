#include "disparity/pairwise.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"
#include "obs/tracer.hpp"

namespace ceta {

Interval sampling_window(const BackwardBounds& b) {
  CETA_EXPECTS(b.bcbt <= b.wcbt,
               "sampling_window: BCBT bound exceeds WCBT bound");
  return Interval(-b.wcbt, -b.bcbt);
}

Duration independent_window_separation(const BackwardBounds& lambda,
                                       const BackwardBounds& nu) {
  const Duration a = lambda.wcbt - nu.bcbt;
  const Duration b = nu.wcbt - lambda.bcbt;
  const Duration abs_a = a < Duration::zero() ? -a : a;
  const Duration abs_b = b < Duration::zero() ? -b : b;
  return std::max(abs_a, abs_b);
}

Duration pdiff_pair_bound(const TaskGraph& g, const Path& lambda,
                          const Path& nu, const ResponseTimeMap& rtm,
                          HopBoundMethod method) {
  return pdiff_pair_bound(g, lambda, nu, method,
                          [&](const Path& chain, HopBoundMethod m) {
                            return backward_bounds(g, chain, rtm, m);
                          });
}

Duration pdiff_pair_bound(const TaskGraph& g, const Path& lambda,
                          const Path& nu, HopBoundMethod method,
                          const BackwardBoundsFn& bounds) {
  obs::Span span("disparity", "pdiff_pair_bound");
  CETA_EXPECTS(!lambda.empty() && !nu.empty(),
               "pdiff_pair_bound: empty chain");
  CETA_EXPECTS(lambda.back() == nu.back(),
               "pdiff_pair_bound: chains must end at the same task");
  CETA_EXPECTS(lambda != nu, "pdiff_pair_bound: chains must differ");

  const BackwardBounds bl = bounds(lambda, method);
  const BackwardBounds bn = bounds(nu, method);
  const Duration o = independent_window_separation(bl, bn);

  if (lambda.front() == nu.front() &&
      g.task(lambda.front()).jitter == Duration::zero()) {
    // Same strictly periodic source: the timestamp difference is a
    // multiple of its period.  (With release jitter the difference is
    // k·T ± J, so the flooring argument no longer applies.)
    return floor_to_multiple(o, g.task(lambda.front()).period);
  }
  return o;
}

}  // namespace ceta
