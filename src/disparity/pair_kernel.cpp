#include "disparity/pair_kernel.hpp"

#include <algorithm>
#include <future>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/math.hpp"
#include "disparity/pairwise.hpp"
#include "engine/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ceta {

namespace {

/// FNV-1a over the id sequence, for the arena's dedup index.
std::uint64_t chain_hash(const TaskId* data, std::size_t len) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

ChainArena::ChainId ChainArena::intern(const TaskId* data, std::size_t len) {
  CETA_EXPECTS(len > 0, "ChainArena::intern: empty chain");
  const std::uint64_t h = chain_hash(data, len);
  std::vector<ChainId>& bucket = index_[h];
  const ChainView candidate{data, len};
  for (const ChainId id : bucket) {
    if (refs_[id] == candidate) return id;
  }
  // Copy into block storage.  A chain never spans blocks and a block's
  // capacity is fixed up front, so earlier views never move.
  if (blocks_.empty() ||
      blocks_.back().size() + len > blocks_.back().capacity()) {
    blocks_.emplace_back();
    blocks_.back().reserve(std::max(kBlockIds, len));
  }
  std::vector<TaskId>& block = blocks_.back();
  const std::size_t start = block.size();
  block.insert(block.end(), data, data + len);
  stored_ids_ += len;
  const ChainId id = static_cast<ChainId>(refs_.size());
  refs_.push_back(ChainView{block.data() + start, len});
  bucket.push_back(id);
  return id;
}

SuffixBoundTable::SuffixBoundTable(const TaskGraph& g, ChainView chain,
                                   const ResponseTimeMap& rtm,
                                   HopBoundMethod method)
    : chain_(chain), rtm_(&rtm) {
  // Mirror backward_bounds' check_chain so the kernel fails the same way
  // on the same inputs.
  CETA_EXPECTS(chain.size != 0, "backward bounds: empty chain");
  CETA_EXPECTS(rtm.size() == g.num_tasks(),
               "backward bounds: response-time map size mismatch");
  for (std::size_t i = 0; i + 1 < chain.size; ++i) {
    CETA_EXPECTS(g.has_edge(chain[i], chain[i + 1]),
                 "backward bounds: not a path of the graph");
  }
  for (const TaskId id : chain) {
    CETA_EXPECTS(id < g.num_tasks(),
                 "backward bounds: not a path of the graph");
    CETA_EXPECTS(rtm[id] != Duration::max(),
                 "backward bounds: task '" + g.task(id).name +
                     "' has no finite WCRT (unschedulable?)");
  }

  const std::size_t len = chain.size;
  wpre_.resize(len);
  bpre_.resize(len);
  fifo_lo_pre_.resize(len);
  bcet_pre_.resize(len + 1);
  let_pre_.resize(len + 1);
  wpre_[0] = bpre_[0] = fifo_lo_pre_[0] = Duration::zero();
  bcet_pre_[0] = Duration::zero();
  let_pre_[0] = 0;
  for (std::size_t i = 0; i < len; ++i) {
    const Task& u = g.task(chain[i]);
    bcet_pre_[i + 1] = bcet_pre_[i] + u.bcet;
    const bool let_blocking =
        !g.is_source(chain[i]) && u.comm == CommSemantics::kLet;
    let_pre_[i + 1] = let_pre_[i] + (let_blocking ? 1u : 0u);
    if (i + 1 == len) continue;
    const Task& v = g.task(chain[i + 1]);
    // Per-hop FIFO shifts (Lemma 6 applied hop-wise).
    const int nbuf = g.channel(chain[i], chain[i + 1]).buffer_size;
    Duration fifo_up = Duration::zero();
    Duration fifo_lo = Duration::zero();
    if (nbuf > 1) {
      fifo_up = u.period * (nbuf - 1) + u.jitter;
      fifo_lo = u.period * (nbuf - 1) - u.jitter;
    }
    wpre_[i + 1] =
        wpre_[i] + hop_bound(g, chain[i], chain[i + 1], rtm, method) + fifo_up;
    fifo_lo_pre_[i + 1] = fifo_lo_pre_[i] + fifo_lo;
    // Mixed/LET per-hop lower bound (bcbt_bound's general branch).
    Duration b;
    if (g.is_source(chain[i])) {
      b = Duration::zero();
    } else if (u.comm == CommSemantics::kLet) {
      b = u.period;
    } else {
      b = u.bcet;
    }
    if (v.comm != CommSemantics::kLet) {
      b -= rtm.at(chain[i + 1]) - v.bcet;  // read delay of the consumer
    }
    bpre_[i + 1] = bpre_[i] + b + fifo_lo;
  }
}

BackwardBounds SuffixBoundTable::bounds(std::size_t first,
                                        std::size_t last) const {
  CETA_EXPECTS(first <= last && last < chain_.size,
               "SuffixBoundTable::bounds: bad sub-chain range");
  BackwardBounds out;
  if (first == last) {
    // A one-task chain's immediate backward job chain is the job itself.
    out.wcbt = Duration::zero();
    out.bcbt = Duration::zero();
    return out;
  }
  out.wcbt = wpre_[last] - wpre_[first];
  if (let_pre_[last + 1] - let_pre_[first] == 0) {
    // Lemma 5 (all-implicit sub-chain).
    out.bcbt = (bcet_pre_[last + 1] - bcet_pre_[first]) -
               rtm_->at(chain_[last]) +
               (fifo_lo_pre_[last] - fifo_lo_pre_[first]);
  } else {
    out.bcbt = bpre_[last] - bpre_[first];
  }
  return out;
}

namespace {

/// Read-only per-analysis context shared by all tiles.
struct KernelState {
  const TaskGraph& g;
  const ResponseTimeMap& rtm;
  const DisparityOptions& opt;
  bool truncate;
  std::vector<ChainView> chains;       // views into the caller's Paths
  std::vector<SuffixBoundTable> tables;
  std::vector<BackwardBounds> full;    // == backward_bounds per chain
};

/// Mutable per-tile workspace: versioned stamp buffers (no clearing per
/// pair), decomposition scratch, and the truncation-dedup memo.  Each tile
/// owns one, so the parallel reduction shares nothing mutable.
struct PairScratch {
  explicit PairScratch(std::size_t num_tasks)
      : stamp(num_tasks, 0), pos(num_tasks, 0) {}

  std::vector<std::uint32_t> stamp;
  std::vector<std::uint32_t> pos;  // position in b, valid when stamped
  std::uint32_t version = 0;
  std::vector<std::size_t> qa, qb;  // joint positions in a / b
  std::vector<BackwardBounds> wa, wb;
  std::vector<std::int64_t> x, y;
  ChainArena arena;                 // interned truncated prefixes
  std::unordered_map<std::uint64_t, Duration> memo;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;

  void bump_version() {
    if (++version == 0) {
      std::fill(stamp.begin(), stamp.end(), 0);
      version = 1;
    }
  }
};

/// Theorem 1 from precomputed bounds — mirror of the analyzer's
/// pdiff_from_bounds / pdiff_pair_bound tail.
Duration pdiff_from_views(const TaskGraph& g, ChainView a, ChainView b,
                          const BackwardBounds& ba, const BackwardBounds& bb) {
  const Duration o = independent_window_separation(ba, bb);
  if (a.front() == b.front() &&
      g.task(a.front()).jitter == Duration::zero()) {
    return floor_to_multiple(o, g.task(a.front()).period);
  }
  return o;
}

/// Mirror of the analyzer's structure_free, over views with the scratch
/// stamp buffer: distinct heads and exactly one shared task (the tail).
bool structure_free_views(ChainView a, ChainView b, PairScratch& s) {
  if (a.front() == b.front()) return false;
  s.bump_version();
  for (const TaskId y : b) s.stamp[y] = s.version;
  std::size_t common = 0;
  for (const TaskId x : a) {
    if (s.stamp[x] == s.version && ++common > 1) return false;
  }
  return common == 1;
}

/// Theorem 2 on the (truncated) pair, with every sub-chain bound an O(1)
/// table lookup.  Mirrors sdiff_pair_bound + decompose_fork_join without
/// materializing joints or sub-chains: joint *positions* come from one
/// stamp pass, sub-chains are index ranges of the parent chains.
Duration sdiff_from_tables(const KernelState& st, std::size_t i,
                           std::size_t j, std::size_t la, std::size_t lb,
                           const BackwardBounds& ba, const BackwardBounds& bb,
                           PairScratch& s) {
  const ChainView a{st.chains[i].data, la};
  const ChainView b{st.chains[j].data, lb};
  const TaskGraph& g = st.g;

  // Joint positions (common tasks).  Mirrors common_tasks' order check:
  // shared tasks must sit at strictly increasing b-positions.
  s.bump_version();
  for (std::size_t p = 0; p < lb; ++p) {
    s.stamp[b[p]] = s.version;
    s.pos[b[p]] = static_cast<std::uint32_t>(p);
  }
  s.qa.clear();
  s.qb.clear();
  std::size_t prev_pb = std::numeric_limits<std::size_t>::max();
  for (std::size_t p = 0; p < la; ++p) {
    if (s.stamp[a[p]] != s.version) continue;
    const std::size_t pb = s.pos[a[p]];
    CETA_EXPECTS(prev_pb == std::numeric_limits<std::size_t>::max() ||
                     pb > prev_pb,
                 "common_tasks: inconsistent order of shared tasks");
    prev_pb = pb;
    s.qa.push_back(p);
    s.qb.push_back(pb);
  }
  // Mirror fork_join_joints: drop a shared head, keep the analyzed tail.
  const bool shared_head = a.front() == b.front();
  std::size_t first_joint = 0;
  if (shared_head) {
    CETA_ASSERT(!s.qa.empty() && s.qa.front() == 0 && s.qb.front() == 0,
                "fork_join_joints: shared head must be first common task");
    first_joint = 1;
  }
  const std::size_t c = s.qa.size() - first_joint;
  CETA_ASSERT(c >= 1 && s.qa.back() == la - 1,
              "fork_join_joints: analyzed task must be a joint");
  const auto joint = [&](std::size_t k) -> TaskId {
    return a[s.qa[first_joint + k]];
  };

  // Jitter at a joint o_j (j < c) or at a shared head breaks the
  // multiple-of-period recursion; degrade to the Theorem 1 separation on
  // the (truncated) chains, without flooring — exactly the reference's
  // fallback path.
  bool jitter_blocks =
      shared_head && g.task(a.front()).jitter > Duration::zero();
  for (std::size_t k = 0; k + 1 < c; ++k) {
    if (g.task(joint(k)).jitter > Duration::zero()) jitter_blocks = true;
  }
  if (jitter_blocks) {
    return independent_window_separation(ba, bb);
  }

  // Sub-chain bounds α_k/β_k from the suffix tables: sub-chain k spans
  // [previous joint, joint k] (the first starts at the chain head) —
  // identical index arithmetic to split_at_joints.
  s.wa.resize(c);
  s.wb.resize(c);
  for (std::size_t k = 0; k < c; ++k) {
    const std::size_t a_first = k == 0 ? 0 : s.qa[first_joint + k - 1];
    const std::size_t b_first = k == 0 ? 0 : s.qb[first_joint + k - 1];
    s.wa[k] = st.tables[i].bounds(a_first, s.qa[first_joint + k]);
    s.wb[k] = st.tables[j].bounds(b_first, s.qb[first_joint + k]);
  }

  // x_j / y_j recursion, from the analyzed task backwards (Theorem 2).
  s.x.assign(c, 0);
  s.y.assign(c, 0);
  for (std::size_t k = c - 1; k-- > 0;) {
    const Duration t_j = g.task(joint(k)).period;
    const Duration t_j1 = g.task(joint(k + 1)).period;
    const Duration num_x =
        s.wa[k + 1].bcbt - s.wb[k + 1].wcbt + t_j1 * s.x[k + 1];
    const Duration num_y =
        s.wa[k + 1].wcbt - s.wb[k + 1].bcbt + t_j1 * s.y[k + 1];
    s.x[k] = ceil_div(num_x, t_j);
    s.y[k] = floor_div(num_y, t_j);
    CETA_ASSERT(s.x[k] <= s.y[k],
                "sdiff_pair_bound: empty release-offset range (x > y); "
                "backward-time bounds are inconsistent");
  }

  // Lemma 3 applied to (α_1, β_1).
  const Duration t_o1 = g.task(joint(0)).period;
  const Duration fa = s.wb[0].wcbt - s.wa[0].bcbt - t_o1 * s.x[0];
  const Duration fb = s.wb[0].bcbt - s.wa[0].wcbt - t_o1 * s.y[0];
  const Duration abs_a = fa < Duration::zero() ? -fa : fa;
  const Duration abs_b = fb < Duration::zero() ? -fb : fb;
  const Duration separation = std::max(abs_a, abs_b);
  if (shared_head) {
    return floor_to_multiple(separation, g.task(a.front()).period);
  }
  return separation;
}

/// The memoizable part of one pair: everything computed on the truncated
/// chains (P-diff, and for the fork–join method its min with S-diff).
/// Depends only on the truncated chain *contents* — the memo key.
Duration truncated_pair_bound(const KernelState& st, std::size_t i,
                              std::size_t j, std::size_t la, std::size_t lb,
                              PairScratch& s) {
  const ChainView a{st.chains[i].data, la};
  const ChainView b{st.chains[j].data, lb};
  const BackwardBounds ba = st.tables[i].bounds(0, la - 1);
  const BackwardBounds bb = st.tables[j].bounds(0, lb - 1);
  const Duration pdiff = pdiff_from_views(st.g, a, b, ba, bb);
  if (st.opt.method == DisparityMethod::kIndependent) return pdiff;
  const Duration sdiff = sdiff_from_tables(st, i, j, la, lb, ba, bb, s);
  return std::min(sdiff, pdiff);
}

/// One pair through the kernel — mirrors pair_disparity_bound_from branch
/// for branch.
Duration kernel_pair_bound(const KernelState& st, std::size_t i,
                           std::size_t j, PairScratch& s) {
  const ChainView a = st.chains[i];
  const ChainView b = st.chains[j];
  if (st.opt.method == DisparityMethod::kIndependent && !st.truncate) {
    return pdiff_from_views(st.g, a, b, st.full[i], st.full[j]);
  }
  if (structure_free_views(a, b, s)) {
    return pdiff_from_views(st.g, a, b, st.full[i], st.full[j]);
  }

  std::size_t la = a.size;
  std::size_t lb = b.size;
  if (st.truncate) {
    // Length of the maximal common suffix; keep everything up to and
    // including its first task (truncate_at_last_joint).
    std::size_t suf = 0;
    while (suf < la && suf < lb && a[la - 1 - suf] == b[lb - 1 - suf]) ++suf;
    CETA_ASSERT(suf >= 1, "truncate_at_last_joint: no common suffix");
    la -= suf - 1;
    lb -= suf - 1;
    CETA_ASSERT(!(ChainView{a.data, la} == ChainView{b.data, lb}),
                "pair_disparity_bound: distinct chains truncated to equal");
  }

  // Truncation dedup: many pairs share the same truncated (λ, ν); key the
  // memo on the interned contents.
  const ChainArena::ChainId ka = s.arena.intern(a.data, la);
  const ChainArena::ChainId kb = s.arena.intern(b.data, lb);
  const std::uint64_t key = (static_cast<std::uint64_t>(ka) << 32) | kb;
  Duration truncated;
  if (const auto it = s.memo.find(key); it != s.memo.end()) {
    ++s.memo_hits;
    truncated = it->second;
  } else {
    ++s.memo_misses;
    truncated = truncated_pair_bound(st, i, j, la, lb, s);
    s.memo.emplace(key, truncated);
  }
  if (st.opt.method == DisparityMethod::kIndependent) return truncated;
  // Fork–join: clamp by Theorem 1 on the full chains (reference line-up:
  // min(sdiff_trunc, pdiff_trunc, pdiff_full)).
  return std::min(truncated,
                  pdiff_from_views(st.g, a, b, st.full[i], st.full[j]));
}

/// Streaming ranked order shared with apply_keep_pairs: bound descending,
/// ties toward the smaller (chain_a, chain_b).
bool pair_better(const PairDisparity& p, const PairDisparity& q) {
  if (p.bound != q.bound) return q.bound < p.bound;
  if (p.chain_a != q.chain_a) return p.chain_a < q.chain_a;
  return p.chain_b < q.chain_b;
}

struct RangeResult {
  Duration worst = Duration::zero();
  /// Kept pairs when streaming (kWorstOnly: <= 1 entry; kTopK: <= top_k,
  /// heap-ordered until the final merge sorts).  Unused under kAll.
  std::vector<PairDisparity> kept;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
};

/// Analyze the flat pair range [lo, hi) (row-major (i, j), i < j).  Under
/// kAll, bounds land in `slots` at their flat index — tiles touch disjoint
/// ranges of the shared vector.  Otherwise the range streams into a local
/// accumulator.  `row_start[i]` is the flat index of pair (i, i+1).
RangeResult analyze_range(const KernelState& st,
                          const std::vector<std::size_t>& row_start,
                          std::size_t lo, std::size_t hi,
                          std::vector<PairDisparity>* slots) {
  RangeResult out;
  if (lo >= hi) return out;
  PairScratch scratch(st.g.num_tasks());
  const std::size_t n = st.chains.size();
  // Row containing `lo`: the last i with row_start[i] <= lo.
  std::size_t i = static_cast<std::size_t>(
      std::upper_bound(row_start.begin(), row_start.end(), lo) -
      row_start.begin() - 1);
  std::size_t j = i + 1 + (lo - row_start[i]);
  const KeepPairs mode = st.opt.keep_pairs;
  const std::size_t top_k = st.opt.top_k;
  // Max-heap by "worseness" so the evictable element sits on top.
  const auto heap_cmp = pair_better;
  for (std::size_t f = lo; f < hi; ++f) {
    const Duration bound = kernel_pair_bound(st, i, j, scratch);
    const PairDisparity pair{i, j, bound};
    out.worst = std::max(out.worst, bound);
    if (slots != nullptr) {
      (*slots)[f] = pair;
    } else if (mode == KeepPairs::kWorstOnly) {
      if (out.kept.empty()) {
        out.kept.push_back(pair);
      } else if (pair_better(pair, out.kept.front())) {
        out.kept.front() = pair;
      }
    } else if (top_k > 0) {  // kTopK
      if (out.kept.size() < top_k) {
        out.kept.push_back(pair);
        std::push_heap(out.kept.begin(), out.kept.end(), heap_cmp);
      } else if (pair_better(pair, out.kept.front())) {
        std::pop_heap(out.kept.begin(), out.kept.end(), heap_cmp);
        out.kept.back() = pair;
        std::push_heap(out.kept.begin(), out.kept.end(), heap_cmp);
      }
    }
    if (++j == n) {
      ++i;
      j = i + 1;
    }
  }
  out.memo_hits = scratch.memo_hits;
  out.memo_misses = scratch.memo_misses;
  return out;
}

}  // namespace

DisparityReport pair_kernel_analyze(
    const TaskGraph& g, const std::vector<Path>& chains,
    const ResponseTimeMap& rtm, const DisparityOptions& opt, ThreadPool* pool,
    const std::vector<BackwardBounds>* full_bounds) {
  obs::Span span("disparity", "pair_kernel");
  static obs::Counter& runs =
      obs::MetricsRegistry::global().counter("disparity.kernel.analyses");
  static obs::Counter& pairs_counter =
      obs::MetricsRegistry::global().counter("disparity.kernel.pairs");
  static obs::Counter& memo_hit_counter =
      obs::MetricsRegistry::global().counter("disparity.kernel.memo_hits");
  runs.add();
  opt.validate();
  CETA_EXPECTS(full_bounds == nullptr || full_bounds->size() == chains.size(),
               "pair_kernel_analyze: full_bounds/chains size mismatch");

  DisparityReport report;
  report.worst_case = Duration::zero();
  report.chains = chains;
  report.chain_count = chains.size();

  const std::size_t n = chains.size();
  KernelState st{g, rtm, opt, disparity_uses_truncation(opt), {}, {}, {}};
  st.chains.reserve(n);
  st.tables.reserve(n);
  st.full.reserve(n);
  for (const Path& c : chains) {
    const ChainView v{c.data(), c.size()};
    st.chains.push_back(v);
    st.tables.emplace_back(g, v, rtm, opt.hop_method);
    // Full-chain bounds: caller-provided (the engine's memoized values) or
    // one O(1) table lookup — identical either way.
    st.full.push_back(full_bounds != nullptr
                          ? (*full_bounds)[st.full.size()]
                          : st.tables.back().full());
  }

  const std::size_t total = n < 2 ? 0 : n * (n - 1) / 2;
  span.arg("chains", static_cast<std::int64_t>(n));
  span.arg("pairs", static_cast<std::int64_t>(total));
  pairs_counter.add(total);
  if (total == 0) return report;

  // row_start[i] = flat index of pair (i, i+1); sentinel at n.
  std::vector<std::size_t> row_start(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    row_start[i + 1] = row_start[i] + (n - 1 - i);
  }

  std::vector<PairDisparity>* slots = nullptr;
  if (opt.keep_pairs == KeepPairs::kAll) {
    report.pairs.resize(total);
    slots = &report.pairs;
  }

  // Tile the flat pair range over the pool.  Tiles are merged in tile
  // order with order-independent operators (max; ranked selection with a
  // total tie-break order), so the result is bit-identical to the serial
  // pass regardless of worker count or scheduling.
  constexpr std::size_t kMinTilePairs = 64;
  std::size_t num_tiles = 1;
  if (pool != nullptr && pool->size() > 1 &&
      !ThreadPool::current_thread_in_pool() && total >= 2 * kMinTilePairs) {
    const std::size_t by_work = total / kMinTilePairs;
    num_tiles = std::min(by_work, pool->size() * 4);
    num_tiles = std::max<std::size_t>(num_tiles, 1);
  }

  std::vector<RangeResult> results;
  if (num_tiles <= 1) {
    results.push_back(analyze_range(st, row_start, 0, total, slots));
  } else {
    span.arg("tiles", static_cast<std::int64_t>(num_tiles));
    std::vector<std::future<RangeResult>> futures;
    futures.reserve(num_tiles);
    const std::size_t tile = (total + num_tiles - 1) / num_tiles;
    for (std::size_t t = 0; t < num_tiles; ++t) {
      const std::size_t lo = t * tile;
      const std::size_t hi = std::min(total, lo + tile);
      futures.push_back(pool->submit([&st, &row_start, lo, hi, slots] {
        return analyze_range(st, row_start, lo, hi, slots);
      }));
    }
    results.reserve(num_tiles);
    for (auto& f : futures) results.push_back(f.get());
  }

  std::uint64_t memo_hits = 0;
  for (const RangeResult& r : results) {
    report.worst_case = std::max(report.worst_case, r.worst);
    memo_hits += r.memo_hits;
  }
  memo_hit_counter.add(memo_hits);

  if (opt.keep_pairs == KeepPairs::kWorstOnly) {
    const PairDisparity* best = nullptr;
    for (const RangeResult& r : results) {
      for (const PairDisparity& p : r.kept) {
        if (best == nullptr || pair_better(p, *best)) best = &p;
      }
    }
    if (best != nullptr) report.pairs.push_back(*best);
  } else if (opt.keep_pairs == KeepPairs::kTopK) {
    for (RangeResult& r : results) {
      report.pairs.insert(report.pairs.end(), r.kept.begin(), r.kept.end());
    }
    // Per-tile top-k of the union == global top-k: anything a tile evicted
    // was beaten by >= top_k pairs within that very tile.
    std::sort(report.pairs.begin(), report.pairs.end(), pair_better);
    report.pairs.resize(std::min(opt.top_k, report.pairs.size()));
  }
  return report;
}

DisparityReport analyze_time_disparity_kernel(const TaskGraph& g, TaskId task,
                                              const ResponseTimeMap& rtm,
                                              const DisparityOptions& opt,
                                              ThreadPool* pool) {
  CETA_EXPECTS(task < g.num_tasks(), "analyze_time_disparity: bad task id");
  const std::vector<Path> chains =
      enumerate_source_chains(g, task, opt.path_cap);
  return pair_kernel_analyze(g, chains, rtm, opt, pool);
}

}  // namespace ceta
