// §IV — cutting down the worst-case time disparity by buffer design
// (Lemma 6, Algorithm 1, Theorem 3).
//
// The pairwise disparity is governed by the relative offset of the two
// sources' sampling windows.  Giving the input channel of the second task
// of the "younger" chain (the one whose window sits further right) a FIFO
// buffer of size n shifts that window left by (n−1)·T(head) (Lemma 6).
// Algorithm 1 picks n so the two window *midpoints* align as closely as a
// multiple of the head's period allows; Theorem 3 lowers the Theorem 2
// bound by exactly the shift L.

#pragma once

#include "disparity/forkjoin.hpp"
#include "graph/paths.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

/// Output of Algorithm 1 for one chain pair.
struct BufferDesign {
  /// True if the buffer goes on λ's head channel, false if on ν's.
  bool buffer_on_lambda = true;
  /// The buffered channel (head → second task of the chosen chain).
  TaskId from = 0;
  TaskId to = 0;  ///< consumer end of the buffered channel
  /// Designed FIFO size (>= 1; 1 means no change was useful).
  int buffer_size = 1;
  /// Window shift L achieved by the design (multiple of T(head)).
  Duration shift;
  /// Theorem 2 bound without buffering, for reference.
  Duration baseline_bound;
  /// Theorem 3 bound with the designed buffer: baseline − L.
  Duration optimized_bound;
  /// Sampling windows before buffering (anchored at λ's o_1 job release).
  Interval window_lambda;
  Interval window_nu;  ///< ν's pre-buffering window, same anchor
};

/// @brief Run Algorithm 1 on two non-identical chains of g ending at the
/// same task.
/// @param g       The analyzed graph.
/// @param lambda,nu  The chain pair (both must end at the same task).
/// @param rtm     Safe WCRT upper bound per task.
/// @param method  Hop-bound method for the Theorem 2 windows.
/// @return The designed FIFO size and the Theorem 3 bound.  A chain must
///   have at least two tasks to host a buffer; if the chain that would be
///   buffered is a single task, the design is trivial (size 1, L = 0).
/// Complexity: one Theorem 2 evaluation, O(c · max chain length).
BufferDesign design_buffer(const TaskGraph& g, const Path& lambda,
                           const Path& nu, const ResponseTimeMap& rtm,
                           HopBoundMethod method =
                               HopBoundMethod::kNonPreemptive);

/// @brief Same design with every sub-chain's backward bounds pulled from
/// `bounds` instead of recomputed — the memoization hook used by
/// AnalysisEngine::optimize_buffer_pair.
/// @param bounds  Must agree with backward_bounds on g (see
///   sdiff_pair_bound).
BufferDesign design_buffer(const TaskGraph& g, const Path& lambda,
                           const Path& nu, HopBoundMethod method,
                           const BackwardBoundsFn& bounds);

/// @brief Apply a design to a graph (sets the channel's FIFO size).
/// @param design  As returned by design_buffer; sizes <= 1 are no-ops.
/// Complexity: O(E) edge lookup.
void apply_buffer_design(TaskGraph& g, const BufferDesign& design);

}  // namespace ceta
