// Extension of §IV: buffer design for a task fusing *more than two*
// chains.
//
// Algorithm 1 aligns the sampling windows of one chain pair.  A fusion
// task with k sensors has k windows; this extension shifts every window
// onto the stalest one: chains are grouped by their head channel (chains
// sharing a channel shift together), each group's window midpoint is
// aligned — up to the granularity of the head period — with the leftmost
// group's, and the resulting FIFO sizes follow Lemma 6.  The optimized
// bound is obtained by re-running the Theorem 2 analysis on the buffered
// graph (the chain bounds are Lemma 6-aware), so it is safe by
// construction; if the heuristic alignment does not improve the bound the
// trivial design (all sizes 1) is returned instead.
//
// Note: a buffered channel delays data for *every* consumer downstream;
// the design optimizes the given task and may change (usually increase)
// the data age and disparity observed elsewhere.

#pragma once

#include <vector>

#include "disparity/analyzer.hpp"
#include "graph/paths.hpp"
#include "sched/npfp_rta.hpp"

namespace ceta {

/// One buffered channel of a multi-chain design.
struct ChannelBuffer {
  TaskId from = 0;        ///< producer end of the channel
  TaskId to = 0;          ///< consumer end of the channel
  int buffer_size = 1;    ///< FIFO depth to install (Lemma 6)
  /// Window shift of the chains through this channel: (size−1)·T(from).
  Duration shift;
};

/// A complete buffer assignment for one fusion task.
struct MultiBufferDesign {
  /// Channels to buffer (sizes > 1 only; empty = nothing to gain).
  std::vector<ChannelBuffer> channels;
  /// Worst-case disparity bound of the task before / after buffering
  /// (both via the task-level analyzer with the given options).
  Duration baseline_bound;   ///< bound on the unbuffered graph
  Duration optimized_bound;  ///< bound after applying `channels`
};

/// Design buffers for all chains fusing at `task`.  Requires the head
/// channels involved to be unbuffered (size 1) in `g`.
MultiBufferDesign design_buffers_for_task(const TaskGraph& g, TaskId task,
                                          const ResponseTimeMap& rtm,
                                          const DisparityOptions& opt = {});

/// Apply a design to a graph.
void apply_multi_buffer_design(TaskGraph& g, const MultiBufferDesign& design);

}  // namespace ceta
