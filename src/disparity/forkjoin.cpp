#include "disparity/forkjoin.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math.hpp"
#include "disparity/pairwise.hpp"
#include "obs/tracer.hpp"

namespace ceta {

ForkJoinBound sdiff_pair_bound(const TaskGraph& g, const Path& lambda,
                               const Path& nu, const ResponseTimeMap& rtm,
                               HopBoundMethod method) {
  return sdiff_pair_bound(g, lambda, nu, method,
                          [&](const Path& chain, HopBoundMethod m) {
                            return backward_bounds(g, chain, rtm, m);
                          });
}

ForkJoinBound sdiff_pair_bound(const TaskGraph& g, const Path& lambda,
                               const Path& nu, HopBoundMethod method,
                               const BackwardBoundsFn& bounds) {
  obs::Span span("disparity", "sdiff_pair_bound");
  CETA_EXPECTS(!lambda.empty() && !nu.empty(), "sdiff_pair_bound: empty chain");
  CETA_EXPECTS(lambda.back() == nu.back(),
               "sdiff_pair_bound: chains must end at the same task");
  CETA_EXPECTS(lambda != nu, "sdiff_pair_bound: chains must differ");

  ForkJoinBound out;
  const ForkJoinDecomposition d = decompose_fork_join(lambda, nu);
  out.joints = d.joints;
  out.shared_head = d.shared_head;
  const std::size_t c = d.joints.size();

  // The x/y recursion and the final flooring rely on joint releases (and
  // a shared source's timestamps) differing by exact period multiples.
  // Release jitter at a joint o_j (j < c) or at a shared head breaks
  // that; fall back to the independent-window computation (Theorem 1 on
  // the full chains) in that case.
  bool jitter_blocks = d.shared_head &&
                       g.task(lambda.front()).jitter > Duration::zero();
  for (std::size_t j = 0; j + 1 < c; ++j) {
    if (g.task(d.joints[j]).jitter > Duration::zero()) jitter_blocks = true;
  }
  if (jitter_blocks) {
    out.degraded = true;
    const BackwardBounds bl = bounds(lambda, method);
    const BackwardBounds bn = bounds(nu, method);
    out.alpha1 = bl;
    out.beta1 = bn;
    out.x.assign(c, 0);
    out.y.assign(c, 0);
    out.separation = independent_window_separation(bl, bn);
    out.bound = out.separation;  // no flooring under jitter
    out.window_lambda = Interval(-bl.wcbt, -bl.bcbt);
    out.window_nu = Interval(-bn.wcbt, -bn.bcbt);
    return out;
  }

  // Backward-time bounds of every sub-chain pair.
  std::vector<BackwardBounds> wa(c), wb(c);
  for (std::size_t i = 0; i < c; ++i) {
    wa[i] = bounds(d.alpha[i], method);
    wb[i] = bounds(d.beta[i], method);
  }
  out.alpha1 = wa[0];
  out.beta1 = wb[0];

  // x_j / y_j recursion, from the analyzed task backwards (Theorem 2).
  out.x.assign(c, 0);
  out.y.assign(c, 0);
  for (std::size_t j = c - 1; j-- > 0;) {
    const Duration t_j = g.task(d.joints[j]).period;
    const Duration t_j1 = g.task(d.joints[j + 1]).period;
    const Duration num_x = wa[j + 1].bcbt - wb[j + 1].wcbt + t_j1 * out.x[j + 1];
    const Duration num_y = wa[j + 1].wcbt - wb[j + 1].bcbt + t_j1 * out.y[j + 1];
    out.x[j] = ceil_div(num_x, t_j);
    out.y[j] = floor_div(num_y, t_j);
    CETA_ASSERT(out.x[j] <= out.y[j],
                "sdiff_pair_bound: empty release-offset range (x > y); "
                "backward-time bounds are inconsistent");
  }

  // Lemma 3 applied to (α_1, β_1) with the release of ν's o_1 job offset by
  // k·T(o_1), k ∈ [x_1, y_1].
  const Duration t_o1 = g.task(d.joints[0]).period;
  const Duration a = wb[0].wcbt - wa[0].bcbt - t_o1 * out.x[0];
  const Duration b = wb[0].bcbt - wa[0].wcbt - t_o1 * out.y[0];
  const Duration abs_a = a < Duration::zero() ? -a : a;
  const Duration abs_b = b < Duration::zero() ? -b : b;
  out.separation = std::max(abs_a, abs_b);

  if (d.shared_head) {
    out.bound = floor_to_multiple(out.separation,
                                  g.task(lambda.front()).period);
  } else {
    out.bound = out.separation;
  }

  // Sampling windows (Lemma 1 for λ, Lemma 2 for ν), anchored at the
  // release of λ's o_1 job (= 0).  Their max separation equals
  // `separation` above; Algorithm 1 aligns their midpoints.
  out.window_lambda = Interval(-wa[0].wcbt, -wa[0].bcbt);
  out.window_nu = Interval(t_o1 * out.x[0] - wb[0].wcbt,
                           t_o1 * out.y[0] - wb[0].bcbt);
  return out;
}

}  // namespace ceta
