#include "disparity/requirements.hpp"

#include "common/error.hpp"
#include "disparity/analyzer.hpp"

namespace ceta {

RequirementsReport verify_disparity_requirements(
    const TaskGraph& g, const std::vector<DisparityRequirement>& reqs,
    const ResponseTimeMap& rtm, const DisparityOptions& opt) {
  for (const DisparityRequirement& r : reqs) {
    CETA_EXPECTS(r.task < g.num_tasks(),
                 "verify_disparity_requirements: unknown task id");
    CETA_EXPECTS(r.max_disparity >= Duration::zero(),
                 "verify_disparity_requirements: negative threshold");
  }

  RequirementsReport report;
  report.final_graph = g;

  // First pass: verify, and remediate violations cumulatively.
  for (const DisparityRequirement& r : reqs) {
    RequirementOutcome out;
    out.requirement = r;
    out.bound = analyze_time_disparity(report.final_graph, r.task, rtm, opt)
                    .worst_case;
    out.final_bound = out.bound;
    if (out.bound <= r.max_disparity) {
      out.status = RequirementStatus::kSatisfied;
      report.outcomes.push_back(std::move(out));
      continue;
    }
    const MultiBufferDesign design =
        design_buffers_for_task(report.final_graph, r.task, rtm, opt);
    if (!design.channels.empty() &&
        design.optimized_bound <= r.max_disparity) {
      apply_multi_buffer_design(report.final_graph, design);
      out.status = RequirementStatus::kFixedByBuffers;
      out.final_bound = design.optimized_bound;
      out.buffers = design.channels;
    } else {
      out.status = RequirementStatus::kViolated;
      // Keep the graph unchanged: a partial remedy that misses the
      // threshold only delays downstream consumers for no benefit.
    }
    report.outcomes.push_back(std::move(out));
  }

  // Second pass: remedies may have shifted data seen by other analyzed
  // tasks; re-verify every outcome against the final graph.
  report.all_satisfied = true;
  for (RequirementOutcome& out : report.outcomes) {
    out.final_bound = analyze_time_disparity(report.final_graph,
                                             out.requirement.task, rtm, opt)
                          .worst_case;
    const bool ok = out.final_bound <= out.requirement.max_disparity;
    if (!ok) {
      out.status = RequirementStatus::kViolated;  // possibly regressed
      report.all_satisfied = false;
    } else if (out.status == RequirementStatus::kViolated) {
      // Another requirement's remedy closed this gap as a side effect.
      out.status = RequirementStatus::kFixedByBuffers;
    }
  }
  return report;
}

}  // namespace ceta
