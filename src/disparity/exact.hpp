// Exact worst-case time disparity for deterministic LET systems.
//
// Under LET every read happens at a release and every publish at a
// deadline, so which sample a job consumes is pure arithmetic in the
// offsets and periods — independent of scheduling and execution times.
// For a task whose entire ancestor closure is LET (sources included,
// which are instant publishers), the *exact* worst-case disparity for a
// concrete offset assignment is therefore computable: trace every chain
// arithmetically for each analyzed-task release in one hyperperiod of the
// involved periods (the phase pattern repeats) and take the maximum.
//
// This both certifies concrete deployments (no bound pessimism at all)
// and measures how tight the offset-oblivious Theorems 1–2 are on
// deterministic systems.

#pragma once

#include <cstddef>

#include "common/time.hpp"
#include "graph/paths.hpp"
#include "graph/task_graph.hpp"

namespace ceta {

/// Result of exact_let_disparity.
struct ExactLetResult {
  /// Exact worst-case disparity of the task for the given offsets.
  Duration worst_disparity;
  /// A release of the analyzed task attaining it (steady state).
  Instant worst_release;
  /// Number of analyzed releases (hyperperiod / T(task)).
  std::size_t releases_examined = 0;
};

/// Exact analysis.  Preconditions: every non-source task in the ancestor
/// closure of `task` (including `task` itself) uses CommSemantics::kLet,
/// and every closure task is jitter-free.  FIFO channel buffers are
/// honored.  Throws CapacityError if the hyperperiod spans more than
/// `max_releases` of the analyzed task or the chain set exceeds
/// `path_cap`.
ExactLetResult exact_let_disparity(const TaskGraph& g, TaskId task,
                                   std::size_t path_cap = kDefaultPathCap,
                                   std::size_t max_releases = 1'000'000);

/// Sufficient warm-up horizon for the exact trace: any release of `task`
/// at or after this instant can be traced through every source chain
/// without any intermediate job index going negative (proof in exact.cpp).
/// The value is max over chains of Σ_hops (buffer+1)·T(producer) — also a
/// useful simulation warm-up for FIFO pipelines, which is why it is
/// exported.  Throws CapacityError past `path_cap`.
Duration exact_warmup_horizon(const TaskGraph& g, TaskId task,
                              std::size_t path_cap = kDefaultPathCap);

}  // namespace ceta
