// Theorem 1 — the "independent chains" pairwise disparity bound (P-diff).
//
// For two chains λ, ν ∈ P ending at the analyzed task, Lemma 1 places the
// timestamp of the source traced through π inside the sampling window
// [−W(π), −B(π)] (release of the analyzed job anchored at 0).  Treating the
// chains as independent, the worst separation of the two windows is
//   O(λ,ν) = max{ |W(λ) − B(ν)|, |W(ν) − B(λ)| },
// and if the chains start at the *same* source, the separation must be a
// multiple of that source's period, so the bound is floored to one.

#pragma once

#include "chain/backward_bounds.hpp"
#include "common/interval.hpp"
#include "graph/paths.hpp"

namespace ceta {

/// Sampling window of the source traced through a chain with the given
/// backward-time bounds, anchored at r(J) = 0 (Lemma 1): [−W, −B].
Interval sampling_window(const BackwardBounds& b);

/// O(λ,ν) of Theorem 1 given both chains' backward-time bounds.
Duration independent_window_separation(const BackwardBounds& lambda,
                                       const BackwardBounds& nu);

/// Theorem 1 bound on |t(λ̄¹) − t(ν̄¹)| for two chains of g ending at the
/// same task.  Chains must be non-identical paths ending at the same task.
Duration pdiff_pair_bound(const TaskGraph& g, const Path& lambda,
                          const Path& nu, const ResponseTimeMap& rtm,
                          HopBoundMethod method =
                              HopBoundMethod::kNonPreemptive);

/// Same bound with the chain backward bounds pulled from `bounds` instead
/// of being recomputed — the memoization hook used by AnalysisEngine.
/// `bounds` must agree with `backward_bounds` on g.
Duration pdiff_pair_bound(const TaskGraph& g, const Path& lambda,
                          const Path& nu, HopBoundMethod method,
                          const BackwardBoundsFn& bounds);

}  // namespace ceta
