// Streaming JSON writer — the single serialization path for everything
// this library emits as JSON: Chrome-trace files (obs/tracer.hpp), metrics
// snapshots (obs/metrics.hpp) and the BENCH_*.json result files
// (bench/bench_util.hpp).  One implementation of escaping, nesting and
// number formatting instead of per-emitter string splicing.
//
// The writer is a push-style state machine over an ostream:
//
//   obs::JsonWriter w(os);
//   w.begin_object();
//     w.member("bench", "engine_vs_free");
//     w.member("warm_speedup", 17.3);
//     w.key("threads"); w.begin_array();
//       w.value(std::int64_t{1}); w.value(std::int64_t{4});
//     w.end_array();
//   w.end_object();
//
// Nesting errors (value without key inside an object, unbalanced end_*,
// dangling key at end) throw PreconditionError — emitting invalid JSON is
// a bug, never a formatting choice.  Doubles are printed with the shortest
// representation that round-trips (6 -> 15 -> 17 significant digits);
// non-finite doubles become null (JSON has no Inf/NaN).

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ceta::obs {

class JsonWriter {
 public:
  /// Write to `os`.  Pretty mode (default) indents by two spaces and puts
  /// every member / element on its own line; compact mode emits no
  /// whitespace at all (used for large trace files).
  explicit JsonWriter(std::ostream& os, bool pretty = true);

  /// The stream must end balanced; done() (or the destructor) checks.
  ~JsonWriter();
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member key; must be directly inside an object and followed by exactly
  /// one value (or container).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Splice `json` — already-serialized JSON text — as exactly one value.
  /// The writer tracks it like any other value (commas, key pairing) but
  /// does not validate it; the caller vouches that it is one well-formed
  /// document.  Lets composed writers embed sub-documents (e.g. a service
  /// reply embedding a prebuilt options object) without reparsing.
  JsonWriter& raw(std::string_view json);

  template <typename T>
  JsonWriter& member(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// Explicit end-of-document check: throws if containers are unbalanced
  /// or a key is dangling, then flushes a trailing newline (pretty mode).
  void done();

  /// JSON string escaping of `s` (quotes not included): ", \, control
  /// characters as \u00XX, and the standard two-character escapes.
  static std::string escape(std::string_view s);

  /// Shortest decimal form of `v` that parses back to exactly `v`
  /// ("null" for non-finite values).
  static std::string format_double(double v);

 private:
  enum class Scope : unsigned char { kObject, kArray };

  void before_value();
  void newline_indent();
  void write_string(std::string_view s);

  std::ostream& os_;
  bool pretty_;
  bool done_ = false;
  bool key_pending_ = false;
  /// Root: at most one value.
  bool root_written_ = false;
  std::vector<std::pair<Scope, bool>> stack_;  // (scope, has_entries)
};

}  // namespace ceta::obs
