// Scoped-span tracer with a Chrome-trace (chrome://tracing / Perfetto)
// JSON exporter.
//
// Instrumented code opens an RAII span around a unit of work:
//
//   void analyze(...) {
//     obs::Span span("sched", "analyze_response_times");
//     span.arg("tasks", static_cast<std::int64_t>(g.num_tasks()));
//     ...
//   }
//
// When tracing is DISABLED (the default) the span constructor is one
// relaxed atomic load and a branch — no clock read, no allocation, no
// stores beyond `active_ = false` — so instrumentation can stay compiled
// into the hot paths permanently (perf_analysis asserts the overhead
// budget).  When ENABLED, each span records a complete ("ph":"X") event
// with nanosecond timestamps into a per-thread buffer; buffers take only
// their own uncontended mutex, so tracing never serializes worker
// threads against each other.
//
// Enabling, two ways:
//   * CETA_TRACE=<path> in the environment — tracing starts before main()
//     and the file is exported at process exit;
//   * programmatically — Tracer::global().start(path) / stop(), or
//     start() / stop_to_string() for in-memory export (tests).
//
// Export is the Chrome trace-event format: one JSON object with a
// "traceEvents" array holding thread-name metadata ("ph":"M") followed by
// all complete events sorted by timestamp.  Load the file in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Span names and categories must be string literals (or otherwise outlive
// the tracer): events store the pointers, not copies.

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ceta::obs {

/// One key/value annotation on a span; values are int64 or a static
/// string.  Two slots per event — enough for "task" + cache hit/miss.
struct TraceArg {
  const char* key;  // nullptr = slot unused
  const char* str;  // nullptr = integer value
  std::int64_t num;
};

struct TraceEvent {
  const char* name;
  const char* category;
  std::int64_t ts_ns;   // start, relative to the trace epoch
  std::int64_t dur_ns;  // >= 0
  TraceArg args[2];
};

class Tracer {
 public:
  /// The process-wide tracer.  First use checks CETA_TRACE.
  static Tracer& global();

  /// One relaxed load; the whole cost of disabled instrumentation.
  static bool enabled() {
    return enabled_flag_.load(std::memory_order_relaxed);
  }

  /// Begin recording (clears previously drained state).  With a path, the
  /// trace is written there by stop(); without, use stop_to_string() or
  /// export_json().
  void start(std::string path = {});

  /// Disable recording and, if start() was given a path, export to it.
  /// Returns the number of events exported.
  std::size_t stop();

  /// Disable recording and export in-memory (ignores any path).
  std::string stop_to_string();

  /// Drain every thread buffer into `os` as Chrome-trace JSON.  Called by
  /// stop(); public for custom sinks.  Returns the event count.
  std::size_t export_json(std::ostream& os);

  /// Label the calling thread in the exported trace ("M" metadata event).
  void set_thread_name(std::string name);

  /// Number of events currently buffered across all threads (diagnostics
  /// and overhead accounting; takes the buffer locks).
  std::size_t pending_events();

  /// Called by Span (enabled path only).
  void record(const TraceEvent& ev);
  std::int64_t now_ns() const;

 private:
  Tracer() = default;

  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::string name;
    std::uint32_t tid = 0;
    std::uint64_t dropped = 0;
  };
  /// Cap per thread; beyond it events are counted as dropped, not stored.
  static constexpr std::size_t kMaxEventsPerThread = 1u << 21;

  ThreadBuffer& local_buffer();

  static std::atomic<bool> enabled_flag_;

  std::mutex mutex_;  // guards buffers_ list, path_, epoch_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::string path_;
  std::int64_t epoch_ns_ = 0;  // steady-clock origin of ts_ns
};

/// RAII scoped span.  Records one complete event from construction to
/// destruction when tracing is enabled; a no-op (one atomic load) when
/// disabled.
class Span {
 public:
  Span(const char* category, const char* name) {
    if (!Tracer::enabled()) return;
    begin(category, name);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Annotate (no-op when the span is inactive).  `str` values must be
  /// string literals.  Inline inactive check: annotations on hot cached
  /// paths cost one predictable branch when tracing is off.
  void arg(const char* key, std::int64_t value) {
    if (active_) arg_slow(key, value);
  }
  void arg(const char* key, const char* str) {
    if (active_) arg_slow(key, str);
  }

 private:
  void begin(const char* category, const char* name);
  void end();
  void arg_slow(const char* key, std::int64_t value);
  void arg_slow(const char* key, const char* str);

  bool active_ = false;
  TraceEvent ev_;  // filled only when active_
};

/// Convenience: name the calling thread in the global tracer's output.
void set_thread_name(std::string name);

}  // namespace ceta::obs
