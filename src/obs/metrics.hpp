// Metrics registry — named counters, gauges and duration histograms for
// the analysis stack, snapshot-exportable as JSON.
//
// Three instrument kinds:
//   * Counter   — monotonically increasing uint64 (cache hits, RTA runs,
//                 simulator events).  Relaxed atomic add; safe to bump
//                 from any thread.
//   * Gauge     — last-set int64 (configured thread count, queue depth).
//   * DurationHistogram — log2-bucketed nanosecond durations with
//                 count/sum/min/max and interpolated p50/p95/p99.
//
// Usage pattern: resolve instruments ONCE (construction, session setup) —
// `counter()` takes a registry mutex — then increment through the returned
// reference, which is wait-free and stable for the registry's lifetime.
// Hot loops should accumulate locally and flush once (see
// sim/simulator.cpp).
//
// Simulator counter taxonomy (global registry, one flush per run/batch):
//   sim.runs / sim.events / sim.jobs_finished / sim.preemptions
//       — the Simulator front door (and the simulate() shim through it);
//   sim.reference.*  — the same four for the differential-testing
//       reference engine, kept separate so old-vs-new benchmarks can
//       attribute event counts;
//   sim.mc.replications / sim.mc.events — Monte-Carlo driver totals
//       (per-replication counts are already folded into sim.*).
// Matching span categories: "sim" with names "simulate",
// "simulator.run", "simulator.run_batch", "simulate_reference",
// "montecarlo.run".
//
// `MetricsRegistry::global()` is the process-wide registry used by the
// free analysis functions and the simulator; `AnalysisEngine` owns a
// private registry per session so per-engine cache statistics do not
// bleed across engines (engine/analysis_engine.hpp).

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/time.hpp"

namespace ceta::obs {

class JsonWriter;

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Lock-free histogram over non-negative durations.  Bucket i counts
/// samples whose nanosecond value has bit-width i (i.e. lies in
/// [2^(i-1), 2^i)); percentiles interpolate linearly inside a bucket, so
/// they carry at most one octave of error — plenty for attributing time
/// across analysis stages.
class DurationHistogram {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
    Duration sum = Duration::zero();
    Duration min = Duration::zero();
    Duration max = Duration::zero();
    Duration p50 = Duration::zero();
    Duration p95 = Duration::zero();
    Duration p99 = Duration::zero();
  };

  void observe(Duration d);
  Snapshot snapshot() const;

 private:
  static constexpr std::size_t kBuckets = 64;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_ns_{0};
  std::atomic<std::int64_t> min_ns_{INT64_MAX};
  std::atomic<std::int64_t> max_ns_{0};
};

/// Point-in-time copy of a registry, ordered by instrument name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, DurationHistogram::Snapshot>> histograms;

  /// Value of a counter by exact name; 0 when absent.
  std::uint64_t counter(std::string_view name) const;

  /// Serialize as one JSON value (object with "counters", "gauges",
  /// "histograms" members) into an in-flight writer.
  void write_json(JsonWriter& w) const;
  /// Standalone pretty-printed JSON document.
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get by name.  The returned reference stays valid for the
  /// registry's lifetime; resolving takes a mutex, using the instrument
  /// does not.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  DurationHistogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// The process-wide registry (free functions, simulator, benches).
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  // std::map: stable nodes (references survive inserts) and name-sorted
  // iteration for deterministic snapshots.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<DurationHistogram>, std::less<>>
      histograms_;
};

}  // namespace ceta::obs
