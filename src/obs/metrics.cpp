#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "obs/json_writer.hpp"

namespace ceta::obs {

namespace {

/// Lower edge (inclusive) of bucket i: durations of bit-width i.
std::int64_t bucket_floor(std::size_t i) {
  return i == 0 ? 0 : std::int64_t{1} << (i - 1);
}

/// Upper edge (exclusive, clamped) of bucket i.
std::int64_t bucket_ceil(std::size_t i) {
  return i >= 63 ? INT64_MAX : (std::int64_t{1} << i);
}

void atomic_min(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& slot, std::int64_t v) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void DurationHistogram::observe(Duration d) {
  // Durations are elapsed times; clamp the (theoretically impossible)
  // negative sample to zero rather than corrupting a bucket index.
  const std::int64_t ns = d < Duration::zero() ? 0 : d.count();
  const std::size_t bucket =
      static_cast<std::size_t>(std::bit_width(static_cast<std::uint64_t>(ns)));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  atomic_min(min_ns_, ns);
  atomic_max(max_ns_, ns);
}

DurationHistogram::Snapshot DurationHistogram::snapshot() const {
  Snapshot s;
  std::array<std::uint64_t, kBuckets> counts;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  // count == 0: the all-zero Snapshot is the defined empty value — the
  // INT64_MAX min sentinel must never leak into a BENCH_*.json snapshot
  // of an idle histogram.
  if (s.count == 0) return s;
  s.sum = Duration::ns(sum_ns_.load(std::memory_order_relaxed));
  std::int64_t min_ns = min_ns_.load(std::memory_order_relaxed);
  const std::int64_t max_ns = max_ns_.load(std::memory_order_relaxed);
  // A snapshot racing the first observe() can see count == 1 with the min
  // slot still at its sentinel (count is bumped before min/max settle);
  // clamp instead of reporting a garbage minimum.
  if (min_ns > max_ns) min_ns = max_ns;
  s.min = Duration::ns(min_ns);
  s.max = Duration::ns(max_ns);

  const auto quantile = [&](double q) {
    // Nearest-rank target, then linear interpolation across the bucket.
    const std::uint64_t target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               q * static_cast<double>(s.count) + 0.5));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (counts[i] == 0) continue;
      if (cum + counts[i] >= target) {
        const double frac = static_cast<double>(target - cum) /
                            static_cast<double>(counts[i]);
        const double lo = static_cast<double>(bucket_floor(i));
        const double hi = static_cast<double>(bucket_ceil(i));
        return Duration::ns(
            static_cast<std::int64_t>(lo + frac * (hi - lo)));
      }
      cum += counts[i];
    }
    return s.max;
  };
  // Clamp into [min, max] (a single sample reports p50 = p95 = p99 =
  // min = max — the defined degenerate value) and force the quantiles
  // monotone: bucket interpolation against torn per-bucket counts could
  // otherwise invert them.
  const auto clamp = [&](Duration d) { return std::clamp(d, s.min, s.max); };
  s.p50 = clamp(quantile(0.50));
  s.p95 = std::max(clamp(quantile(0.95)), s.p50);
  s.p99 = std::max(clamp(quantile(0.99)), s.p95);
  return s;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>())
              .first->second;
}

DurationHistogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string(name),
                       std::make_unique<DurationHistogram>())
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot s;
  const std::lock_guard<std::mutex> lock(mutex_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.emplace_back(name, c->value());
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.emplace_back(name, g->value());
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

void MetricsSnapshot::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.member(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.member(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.member("count", h.count)
        .member("sum_ns", h.sum.count())
        .member("min_ns", h.min.count())
        .member("max_ns", h.max.count())
        .member("p50_ns", h.p50.count())
        .member("p95_ns", h.p95.count())
        .member("p99_ns", h.p99.count());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  write_json(w);
  w.done();
  return os.str();
}

}  // namespace ceta::obs
