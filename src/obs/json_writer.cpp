#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

#include "common/error.hpp"

namespace ceta::obs {

JsonWriter::JsonWriter(std::ostream& os, bool pretty)
    : os_(os), pretty_(pretty) {}

// Balance violations are only detectable here, where throwing is not an
// option — done() is the checked way to finish a document.
JsonWriter::~JsonWriter() = default;

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_value() {
  CETA_EXPECTS(!done_, "JsonWriter: document already finished");
  if (stack_.empty()) {
    CETA_EXPECTS(!root_written_, "JsonWriter: multiple root values");
    root_written_ = true;
    return;
  }
  auto& [scope, has_entries] = stack_.back();
  if (scope == Scope::kObject) {
    CETA_EXPECTS(key_pending_, "JsonWriter: object value without a key");
    key_pending_ = false;
    return;  // comma/indent were written by key()
  }
  if (has_entries) os_ << ',';
  has_entries = true;
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  CETA_EXPECTS(!done_, "JsonWriter: document already finished");
  CETA_EXPECTS(!stack_.empty() && stack_.back().first == Scope::kObject,
               "JsonWriter: key outside an object");
  CETA_EXPECTS(!key_pending_, "JsonWriter: consecutive keys");
  auto& [scope, has_entries] = stack_.back();
  if (has_entries) os_ << ',';
  has_entries = true;
  newline_indent();
  write_string(k);
  os_ << ':';
  if (pretty_) os_ << ' ';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.emplace_back(Scope::kObject, false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  CETA_EXPECTS(!stack_.empty() && stack_.back().first == Scope::kObject,
               "JsonWriter: end_object without begin_object");
  CETA_EXPECTS(!key_pending_, "JsonWriter: dangling key at end_object");
  const bool had_entries = stack_.back().second;
  stack_.pop_back();
  if (had_entries) newline_indent();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.emplace_back(Scope::kArray, false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  CETA_EXPECTS(!stack_.empty() && stack_.back().first == Scope::kArray,
               "JsonWriter: end_array without begin_array");
  const bool had_entries = stack_.back().second;
  stack_.pop_back();
  if (had_entries) newline_indent();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  write_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  os_ << format_double(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  CETA_EXPECTS(!json.empty(), "JsonWriter::raw: empty splice");
  before_value();
  os_ << json;
  return *this;
}

void JsonWriter::done() {
  CETA_EXPECTS(stack_.empty() && !key_pending_,
               "JsonWriter: done() with unbalanced containers");
  CETA_EXPECTS(root_written_, "JsonWriter: empty document");
  if (pretty_ && !done_) os_ << '\n';
  done_ = true;
}

void JsonWriter::write_string(std::string_view s) {
  os_ << '"' << escape(s) << '"';
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through untouched
        }
    }
  }
  return out;
}

std::string JsonWriter::format_double(double v) {
  if (!std::isfinite(v)) return "null";
  // Shortest of 6/15/17 significant digits that round-trips.
  char buf[40];
  for (const int precision : {6, 15, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace ceta::obs
