#include "obs/tracer.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "obs/json_writer.hpp"

namespace ceta::obs {

// Constant-initialized: safe to read from any static initializer.
std::atomic<bool> Tracer::enabled_flag_{false};

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The trace epoch is read on every enabled span without the tracer mutex;
// atomic keeps the start()/record() pair race-free.
std::atomic<std::int64_t> g_epoch_ns{0};

/// CETA_TRACE=<path>: enable the process-wide tracer before main() and
/// export at exit.  Runs during this translation unit's static
/// initialization, which is ordered before main() whenever the library is
/// linked at all.
struct EnvInit {
  EnvInit() {
    if (const char* path = std::getenv("CETA_TRACE"); path && *path) {
      Tracer::global().start(path);
      std::atexit([] { (void)Tracer::global().stop(); });
    }
  }
};
const EnvInit env_init;

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [this] {
    auto b = std::make_shared<ThreadBuffer>();
    const std::lock_guard<std::mutex> lock(mutex_);
    b->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(b);
    return b;
  }();
  return *buf;
}

std::int64_t Tracer::now_ns() const {
  return steady_now_ns() - g_epoch_ns.load(std::memory_order_relaxed);
}

void Tracer::start(std::string path) {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    path_ = std::move(path);
    buffers = buffers_;
  }
  // Drop events of any previous recording; thread registrations (names,
  // tids) survive across start/stop cycles.
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mutex);
    b->events.clear();
    b->dropped = 0;
  }
  g_epoch_ns.store(steady_now_ns(), std::memory_order_relaxed);
  enabled_flag_.store(true, std::memory_order_relaxed);
}

std::size_t Tracer::stop() {
  enabled_flag_.store(false, std::memory_order_relaxed);
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    path = path_;
  }
  if (path.empty()) return 0;
  std::ofstream out(path);
  if (!out) throw Error("Tracer: cannot open trace file '" + path + "'");
  const std::size_t n = export_json(out);
  if (!out) throw Error("Tracer: write to '" + path + "' failed");
  return n;
}

std::string Tracer::stop_to_string() {
  enabled_flag_.store(false, std::memory_order_relaxed);
  std::ostringstream os;
  export_json(os);
  return os.str();
}

void Tracer::record(const TraceEvent& ev) {
  ThreadBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.events.size() >= kMaxEventsPerThread) {
    ++buf.dropped;
    return;
  }
  buf.events.push_back(ev);
}

void Tracer::set_thread_name(std::string name) {
  ThreadBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(buf.mutex);
  buf.name = std::move(name);
}

std::size_t Tracer::pending_events() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::size_t n = 0;
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mutex);
    n += b->events.size();
  }
  return n;
}

std::size_t Tracer::export_json(std::ostream& os) {
  struct OwnedEvent {
    TraceEvent ev;
    std::uint32_t tid;
  };
  struct ThreadMeta {
    std::uint32_t tid;
    std::string name;
  };
  std::vector<OwnedEvent> events;
  std::vector<ThreadMeta> threads;
  std::uint64_t dropped = 0;

  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& b : buffers) {
    const std::lock_guard<std::mutex> lock(b->mutex);
    for (const TraceEvent& ev : b->events) {
      events.push_back(OwnedEvent{ev, b->tid});
    }
    if (!b->name.empty() || !b->events.empty()) {
      threads.push_back(ThreadMeta{
          b->tid,
          b->name.empty() ? "thread-" + std::to_string(b->tid) : b->name});
    }
    dropped += b->dropped;
    b->events.clear();  // drained
    b->dropped = 0;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const OwnedEvent& a, const OwnedEvent& b) {
                     return a.ev.ts_ns < b.ev.ts_ns;
                   });

  // Chrome trace-event format; ts/dur are microseconds (fractional keeps
  // the ns resolution).  Compact mode: trace files can hold millions of
  // events.
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const ThreadMeta& t : threads) {
    w.begin_object()
        .member("ph", "M")
        .member("pid", 1)
        .member("tid", static_cast<std::int64_t>(t.tid))
        .member("name", "thread_name");
    w.key("args").begin_object().member("name", t.name).end_object();
    w.end_object();
  }
  for (const OwnedEvent& e : events) {
    w.begin_object()
        .member("ph", "X")
        .member("pid", 1)
        .member("tid", static_cast<std::int64_t>(e.tid))
        .member("cat", e.ev.category)
        .member("name", e.ev.name)
        .member("ts", static_cast<double>(e.ev.ts_ns) / 1e3)
        .member("dur", static_cast<double>(e.ev.dur_ns) / 1e3);
    if (e.ev.args[0].key != nullptr) {
      w.key("args").begin_object();
      for (const TraceArg& a : e.ev.args) {
        if (a.key == nullptr) continue;
        if (a.str != nullptr) {
          w.member(a.key, a.str);
        } else {
          w.member(a.key, a.num);
        }
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.member("displayTimeUnit", "ms");
  w.key("ceta").begin_object();
  w.member("dropped_events", dropped);
  w.end_object();
  w.end_object();
  w.done();
  return events.size();
}

void Span::begin(const char* category, const char* name) {
  ev_.name = name;
  ev_.category = category;
  ev_.ts_ns = Tracer::global().now_ns();
  ev_.dur_ns = 0;
  ev_.args[0] = TraceArg{nullptr, nullptr, 0};
  ev_.args[1] = TraceArg{nullptr, nullptr, 0};
  active_ = true;
}

void Span::end() {
  const std::int64_t now = Tracer::global().now_ns();
  ev_.dur_ns = now > ev_.ts_ns ? now - ev_.ts_ns : 0;
  Tracer::global().record(ev_);
  active_ = false;
}

void Span::arg_slow(const char* key, std::int64_t value) {
  for (TraceArg& slot : ev_.args) {
    if (slot.key == nullptr) {
      slot = TraceArg{key, nullptr, value};
      return;
    }
  }
}

void Span::arg_slow(const char* key, const char* str) {
  for (TraceArg& slot : ev_.args) {
    if (slot.key == nullptr) {
      slot = TraceArg{key, str, 0};
      return;
    }
  }
}

void set_thread_name(std::string name) {
  Tracer::global().set_thread_name(std::move(name));
}

}  // namespace ceta::obs
