// Quickstart: build a small cause-effect graph, bound the worst-case time
// disparity of its fusion task, and validate the bound by simulation.
//
//        ┌─> filter ──┐
//  cam ─>┤            ├─> fuse
//        └─> detect ──┘
//
// Build & run:  ./examples/quickstart

#include <iostream>

#include "engine/analysis_engine.hpp"
#include "graph/dot.hpp"
#include "graph/task_graph.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace ceta;

  // 1. Describe the application graph: (WCET, BCET, period) per task,
  //    static ECU mapping, fixed priorities (smaller value = higher).
  TaskGraph g;
  Task cam;
  cam.name = "camera";
  cam.period = Duration::ms(10);  // sources have zero execution time
  const TaskId camera = g.add_task(cam);

  auto make = [](const char* name, Duration wcet, Duration bcet,
                 Duration period, EcuId ecu, int prio) {
    Task t;
    t.name = name;
    t.wcet = wcet;
    t.bcet = bcet;
    t.period = period;
    t.ecu = ecu;
    t.priority = prio;
    return t;
  };
  const TaskId filter = g.add_task(
      make("filter", Duration::ms(2), Duration::ms(1), Duration::ms(20), 0, 0));
  const TaskId detect = g.add_task(
      make("detect", Duration::ms(4), Duration::ms(2), Duration::ms(40), 0, 1));
  const TaskId fuse = g.add_task(
      make("fuse", Duration::ms(1), Duration::ms(1), Duration::ms(20), 1, 0));

  g.add_edge(camera, filter);
  g.add_edge(camera, detect);
  g.add_edge(filter, fuse);
  g.add_edge(detect, fuse);
  g.validate();

  std::cout << "Graph (DOT):\n" << to_dot(g) << '\n';

  // 2. Hand the graph to an analysis engine: it owns a copy and computes
  //    (then memoizes) response times, chain sets and all bounds on demand.
  const AnalysisEngine engine(g);
  const RtaResult& rta = engine.rta();
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    std::cout << "R(" << g.task(id).name
              << ") = " << to_string(rta.response_time[id])
              << (rta.schedulable[id] ? "" : "  ** deadline miss **") << '\n';
  }

  // 3. Bound the worst-case time disparity of the fusion task with both
  //    analyses of the paper (they share the engine's cached chain bounds).
  DisparityOptions opt;
  opt.method = DisparityMethod::kIndependent;
  const Duration pdiff = engine.disparity(fuse, opt).worst_case;
  const DisparityReport sdiff = engine.disparity(fuse);

  std::cout << "\nWorst-case time disparity of 'fuse':\n"
            << "  P-diff (Theorem 1, independent chains): "
            << to_string(pdiff) << '\n'
            << "  S-diff (Theorem 2, fork-join aware):    "
            << to_string(sdiff.worst_case) << '\n'
            << "  chains fused: " << sdiff.chains.size() << '\n';

  // 4. Validate against a 10-second simulation (an unsafe lower bound).
  SimOptions sopt;
  sopt.duration = Duration::s(10);
  sopt.exec_model = ExecTimeModel::kUniform;
  const SimResult sim = Simulator(g, sopt).run();
  std::cout << "  Sim (10 s, uniform execution):          "
            << to_string(sim.max_disparity[fuse]) << "  ("
            << sim.jobs_observed[fuse] << " jobs observed)\n";

  const bool safe = sim.max_disparity[fuse] <= sdiff.worst_case &&
                    sdiff.worst_case <= pdiff;
  std::cout << "\nSafety check (Sim <= S-diff <= P-diff): "
            << (safe ? "OK" : "VIOLATED") << '\n';
  return safe ? 0 : 1;
}
