// An autonomous-driving pipeline in the style of the paper's Fig. 1
// (sensing → perception → planning → control), distributed over three
// ECUs with CAN-bus communication between them.
//
//   camera (33ms) ─> img_proc ─> detect ──┐
//   lidar  (100ms) ─> cloud ─> segment ───┼─> fusion ─> plan ─> control
//   radar  (50ms) ─> radar_proc ──────────┘
//
// The example inserts CAN message tasks for every inter-ECU edge, bounds
// the time disparity at the fusion and control tasks, and checks both
// bounds against a simulation.

#include <iostream>

#include "engine/analysis_engine.hpp"
#include "graph/paths.hpp"
#include "graph/task_graph.hpp"
#include "sched/bus.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace ceta;

  TaskGraph g;
  auto source = [&g](const char* name, Duration period) {
    Task t;
    t.name = name;
    t.period = period;
    return g.add_task(t);
  };
  auto stage = [&g](const char* name, Duration wcet, Duration bcet,
                    Duration period, EcuId ecu) {
    Task t;
    t.name = name;
    t.wcet = wcet;
    t.bcet = bcet;
    t.period = period;
    t.ecu = ecu;
    return g.add_task(t);
  };

  // Sensors (sources).
  const TaskId camera = source("camera", Duration::ms(33));
  const TaskId lidar = source("lidar", Duration::ms(100));
  const TaskId radar = source("radar", Duration::ms(50));

  // ECU 0: vision.  ECU 1: lidar/radar.  ECU 2: fusion/planning/control.
  const TaskId img_proc =
      stage("img_proc", Duration::ms(8), Duration::ms(4), Duration::ms(33), 0);
  const TaskId detect =
      stage("detect", Duration::ms(10), Duration::ms(6), Duration::ms(33), 0);
  const TaskId cloud =
      stage("cloud", Duration::ms(20), Duration::ms(10), Duration::ms(100), 1);
  const TaskId segment = stage("segment", Duration::ms(15), Duration::ms(8),
                               Duration::ms(100), 1);
  const TaskId radar_proc = stage("radar_proc", Duration::ms(3),
                                  Duration::ms(1), Duration::ms(50), 1);
  const TaskId fusion =
      stage("fusion", Duration::ms(5), Duration::ms(3), Duration::ms(50), 2);
  // plan must stay short: under non-preemptive scheduling its WCET blocks
  // the 10ms control task on the same ECU (R(control) <= 10ms requires
  // every lower-priority WCET on ECU 2 to be <= 8ms).
  const TaskId plan =
      stage("plan", Duration::ms(6), Duration::ms(3), Duration::ms(100), 2);
  const TaskId control =
      stage("control", Duration::ms(2), Duration::ms(1), Duration::ms(10), 2);

  g.add_edge(camera, img_proc);
  g.add_edge(img_proc, detect);
  g.add_edge(lidar, cloud);
  g.add_edge(cloud, segment);
  g.add_edge(radar, radar_proc);
  g.add_edge(detect, fusion);
  g.add_edge(segment, fusion);
  g.add_edge(radar_proc, fusion);
  g.add_edge(fusion, plan);
  g.add_edge(plan, control);

  assign_priorities_rate_monotonic(g);
  g.validate();

  // Model inter-ECU communication as CAN message tasks.
  BusConfig bus;
  bus.bus_resource = 10;
  bus.msg_wcet = Duration::us(500);
  bus.msg_bcet = Duration::us(250);
  const TaskGraph with_bus = insert_can_messages(g, bus);
  std::cout << "Pipeline: " << g.num_tasks() << " tasks ("
            << with_bus.num_tasks() - g.num_tasks()
            << " CAN messages inserted)\n";

  // One engine for the whole bus-extended pipeline; both analyzed tasks
  // and both methods share its RTA and chain-bound caches.
  const AnalysisEngine engine(with_bus);
  if (!engine.schedulable()) {
    std::cerr << "pipeline is not schedulable\n";
    return 1;
  }

  // The fusion task consumes all three sensors; bound its disparity —
  // the requirement that camera/LiDAR/radar samples fused together were
  // taken close enough in time.
  for (TaskId analyzed : {fusion, control}) {
    DisparityOptions opt;
    opt.method = DisparityMethod::kIndependent;
    const Duration pdiff = engine.disparity(analyzed, opt).worst_case;
    const DisparityReport rep = engine.disparity(analyzed);
    std::cout << "\n'" << with_bus.task(analyzed).name << "' fuses "
              << rep.chains.size() << " sensor chains:\n"
              << "  P-diff: " << to_string(pdiff) << '\n'
              << "  S-diff: " << to_string(rep.worst_case) << '\n';

    SimOptions sopt;
    sopt.duration = Duration::s(20);
    const SimResult sim = Simulator(with_bus, sopt).run();
    std::cout << "  Sim:    " << to_string(sim.max_disparity[analyzed])
              << '\n';
    if (sim.max_disparity[analyzed] > rep.worst_case) {
      std::cerr << "bound violated!\n";
      return 1;
    }
  }

  std::cout << "\nAll disparity bounds validated by simulation.\n";
  return 0;
}
