// The §IV story end to end: why raising a task's sampling frequency does
// NOT cut the worst-case time disparity (the paper's Fig. 4 observation),
// and how Algorithm 1's buffer design does.
//
// Topology (two sensor chains fused at F):
//   S1 (10ms) -> P (30ms or 10ms) -> F (30ms)
//   S2 (100ms) -> Q (100ms) ------/

#include <iostream>

#include "disparity/buffer_opt.hpp"
#include "disparity/forkjoin.hpp"
#include "engine/analysis_engine.hpp"
#include "graph/paths.hpp"
#include "graph/task_graph.hpp"
#include "sim/engine.hpp"

namespace {

ceta::TaskGraph build(ceta::Duration p_period) {
  using namespace ceta;
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(100);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = 0;
    return t;
  };
  const TaskId p = g.add_task(mk("P", p_period, 0));
  const TaskId q = g.add_task(mk("Q", Duration::ms(100), 1));
  const TaskId f = g.add_task(mk("F", Duration::ms(30), 2));
  g.add_edge(s1id, p);
  g.add_edge(s2id, q);
  g.add_edge(p, f);
  g.add_edge(q, f);
  g.validate();
  return g;
}

void report(const char* label, const ceta::TaskGraph& g) {
  using namespace ceta;
  const AnalysisEngine engine(g);
  const auto& chains = engine.chains(4);
  const ForkJoinBound fj =
      sdiff_pair_bound(g, chains[0], chains[1], engine.response_times());
  std::cout << label << "\n  sampling window via " << g.task(chains[0][1]).name
            << "-chain: " << to_string(fj.window_lambda)
            << "\n  sampling window via " << g.task(chains[1][1]).name
            << "-chain: " << to_string(fj.window_nu)
            << "\n  S-diff bound: " << to_string(fj.bound) << '\n';

  const BufferDesign d = engine.optimize_buffer_pair(chains[0], chains[1]);
  std::cout << "  Algorithm 1: buffer of size " << d.buffer_size
            << " on channel " << g.task(d.from).name << " -> "
            << g.task(d.to).name << " (window shift L = "
            << to_string(d.shift) << ")\n"
            << "  S-diff-B bound (Theorem 3): "
            << to_string(d.optimized_bound) << '\n';

  // Measure both configurations.
  TaskGraph buffered = g;
  apply_buffer_design(buffered, d);
  SimOptions sopt;
  sopt.duration = Duration::s(30);
  sopt.warmup = Duration::s(5);
  const SimResult base = Simulator(g, sopt).run();
  const SimResult opt = Simulator(buffered, sopt).run();
  std::cout << "  measured disparity:  base " << to_string(base.max_disparity[4])
            << "  buffered " << to_string(opt.max_disparity[4]) << "\n\n";
}

}  // namespace

int main() {
  using namespace ceta;
  std::cout << "=== P samples at 30ms ===\n";
  report("baseline", build(Duration::ms(30)));

  std::cout << "=== P samples at 10ms (3x faster) ===\n";
  std::cout << "Raising P's frequency wastes computation (2 of 3 outputs\n"
               "are never consumed by F) yet barely moves the worst case,\n"
               "because the disparity is governed by the WCBT of one chain\n"
               "vs the BCBT of the other (Fig. 4 of the paper):\n\n";
  report("3x sampling", build(Duration::ms(10)));

  std::cout << "The buffer design, in contrast, shifts the fresher chain's\n"
               "sampling window onto the staler one and cuts the worst case\n"
               "in both variants.\n";
  return 0;
}
