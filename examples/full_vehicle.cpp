// A full-vehicle-scale system (~30 tasks, 6 ECUs + CAN bus) exercising the
// whole toolbox on one model:
//   * schedulability and per-ECU utilization (jitter-aware NP-FP RTA),
//   * analysis scoping via ancestor subgraphs,
//   * critical chains and end-to-end latency budgets,
//   * worst-case time disparity at every fusion point,
//   * parameter sensitivity (which knob actually moves the worst case),
//   * disparity requirements with automatic buffer remediation,
//   * a simulation cross-check and an ASCII Gantt of the first 100 ms.
//
// The topology follows the paper's Fig. 1 narrative: front/rear cameras,
// LiDAR, radar, GNSS and wheel odometry feed perception pipelines that
// fuse into tracking, prediction, planning and control.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "chain/critical.hpp"
#include "disparity/requirements.hpp"
#include "disparity/sensitivity.hpp"
#include "engine/analysis_engine.hpp"
#include "experiments/table.hpp"
#include "graph/algorithms.hpp"
#include "graph/paths.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sched/bus.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"
#include "sim/gantt.hpp"

int main(int argc, char** argv) {
  using namespace ceta;

  // --trace PATH: Chrome-trace JSON of the whole run (or CETA_TRACE=PATH).
  // --metrics PATH: JSON snapshot of engine + global metrics at the end.
  std::string trace_path;
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--trace PATH] [--metrics PATH]\n";
      return 2;
    }
  }
  if (!trace_path.empty()) {
    const bool env_active = obs::Tracer::enabled();
    obs::Tracer::global().start(trace_path);
    if (!env_active) {
      std::atexit([] { (void)obs::Tracer::global().stop(); });
    }
  }

  TaskGraph g;
  auto sensor = [&g](const char* name, Duration period,
                     Duration jitter = Duration::zero()) {
    Task t;
    t.name = name;
    t.period = period;
    t.jitter = jitter;
    return g.add_task(t);
  };
  auto stage = [&g](const char* name, Duration wcet, Duration bcet,
                    Duration period, EcuId ecu) {
    Task t;
    t.name = name;
    t.wcet = wcet;
    t.bcet = bcet;
    t.period = period;
    t.ecu = ecu;
    return g.add_task(t);
  };

  // --- Sensors (sources). Radar has acquisition jitter. ---------------
  const TaskId cam_f = sensor("cam_front", Duration::ms(33));
  const TaskId cam_r = sensor("cam_rear", Duration::ms(33));
  const TaskId lidar = sensor("lidar", Duration::ms(100));
  const TaskId radar = sensor("radar", Duration::ms(50), Duration::ms(5));
  const TaskId gnss = sensor("gnss", Duration::ms(100));
  const TaskId wheel = sensor("wheel_odo", Duration::ms(10));

  // --- ECU 0/1: vision pipelines. --------------------------------------
  const TaskId isp_f = stage("isp_front", Duration::ms(6), Duration::ms(3),
                             Duration::ms(33), 0);
  const TaskId det_f = stage("detect_front", Duration::ms(12), Duration::ms(6),
                             Duration::ms(33), 0);
  const TaskId lane = stage("lane_fit", Duration::ms(4), Duration::ms(2),
                            Duration::ms(33), 0);
  const TaskId isp_r = stage("isp_rear", Duration::ms(6), Duration::ms(3),
                             Duration::ms(33), 1);
  const TaskId det_r = stage("detect_rear", Duration::ms(12), Duration::ms(6),
                             Duration::ms(33), 1);

  // --- ECU 2: lidar/radar processing. ----------------------------------
  const TaskId cloud = stage("cloud_filter", Duration::ms(18), Duration::ms(9),
                             Duration::ms(100), 2);
  const TaskId segm = stage("segmentation", Duration::ms(22), Duration::ms(12),
                            Duration::ms(100), 2);
  const TaskId r_trk = stage("radar_tracks", Duration::ms(4), Duration::ms(2),
                             Duration::ms(50), 2);

  // --- ECU 3: localization. --------------------------------------------
  const TaskId ego = stage("ego_motion", Duration::ms(2), Duration::ms(1),
                           Duration::ms(10), 3);
  const TaskId local = stage("localization", Duration::ms(8), Duration::ms(4),
                             Duration::ms(100), 3);

  // --- ECU 4: fusion + prediction. --------------------------------------
  const TaskId fusion = stage("obstacle_fusion", Duration::ms(8),
                              Duration::ms(4), Duration::ms(50), 4);
  const TaskId track = stage("tracking", Duration::ms(6), Duration::ms(3),
                             Duration::ms(50), 4);
  const TaskId predict = stage("prediction", Duration::ms(10), Duration::ms(5),
                               Duration::ms(100), 4);

  // --- ECU 5: planning + control. ---------------------------------------
  const TaskId plan = stage("planner", Duration::ms(7), Duration::ms(4),
                            Duration::ms(100), 5);
  const TaskId control = stage("controller", Duration::ms(2), Duration::ms(1),
                               Duration::ms(10), 5);

  // --- Data flow. --------------------------------------------------------
  g.add_edge(cam_f, isp_f);
  g.add_edge(isp_f, det_f);
  g.add_edge(isp_f, lane);
  g.add_edge(cam_r, isp_r);
  g.add_edge(isp_r, det_r);
  g.add_edge(lidar, cloud);
  g.add_edge(cloud, segm);
  g.add_edge(radar, r_trk);
  g.add_edge(wheel, ego);
  g.add_edge(gnss, local);
  g.add_edge(ego, local);
  g.add_edge(det_f, fusion);
  g.add_edge(det_r, fusion);
  g.add_edge(segm, fusion);
  g.add_edge(r_trk, fusion);
  g.add_edge(local, fusion);
  g.add_edge(fusion, track);
  g.add_edge(track, predict);
  g.add_edge(lane, plan);
  g.add_edge(predict, plan);
  g.add_edge(plan, control);
  g.add_edge(ego, control);

  assign_priorities_rate_monotonic(g);
  g.validate();

  // Inter-ECU edges travel over CAN.
  BusConfig bus;
  bus.bus_resource = 100;
  bus.msg_wcet = Duration::us(400);
  bus.msg_bcet = Duration::us(200);
  const TaskGraph sys = insert_can_messages(g, bus);
  std::cout << "System: " << sys.num_tasks() << " tasks ("
            << sys.num_tasks() - g.num_tasks() << " CAN messages), "
            << sys.num_edges() << " channels, "
            << resources_of(sys).size() << " resources\n";

  // One engine serves every analysis of the bus-extended system below:
  // the RTA, chain sets and per-hop bounds are computed once and shared.
  const AnalysisEngine engine(sys);
  const RtaResult& rta = engine.rta();
  if (!rta.all_schedulable) {
    std::cerr << "system is not schedulable\n";
    for (TaskId id = 0; id < sys.num_tasks(); ++id) {
      if (!rta.schedulable[id]) {
        std::cerr << "  deadline miss: " << sys.task(id).name << '\n';
      }
    }
    return 1;
  }
  for (const EcuId ecu : resources_of(sys)) {
    std::cout << "  resource " << ecu << ": "
              << fmt_percent(resource_utilization(sys, ecu)) << " utilized\n";
  }

  // Scoping: the fusion analysis only needs fusion's ancestor closure.
  const TaskId sys_fusion = fusion;  // ids preserved by insert_can_messages
  const SubgraphExtract scope = ancestor_subgraph(sys, sys_fusion);
  std::cout << "\nFusion ancestor closure: " << scope.graph.num_tasks()
            << " of " << sys.num_tasks() << " tasks\n";

  // Critical chain + latency budget at the controller.
  const CriticalChain crit =
      critical_chain(sys, control, rta.response_time);
  std::cout << "Critical chain to controller (WCBT " << to_string(crit.wcbt)
            << "):\n  ";
  for (std::size_t i = 0; i < crit.chain.size(); ++i) {
    std::cout << (i ? " -> " : "") << sys.task(crit.chain[i]).name;
  }
  const LatencyReport lat = engine.latency(crit.chain);
  std::cout << "\n  max data age: " << to_string(lat.max_data_age)
            << ", max reaction: " << to_string(lat.max_reaction_time) << '\n';

  // Disparity at every fusion point, analyzed as one batch over the
  // engine's thread pool.
  const std::vector<TaskId> fusing = engine.fusing_tasks();
  const std::vector<DisparityReport> reps = engine.disparity_all(fusing);
  ConsoleTable disp({"task", "chains", "S-diff"});
  for (std::size_t i = 0; i < fusing.size(); ++i) {
    disp.add_row({sys.task(fusing[i]).name,
                  std::to_string(reps[i].chains.size()),
                  to_string(reps[i].worst_case)});
  }
  std::cout << "\nWorst-case time disparity (all fusion points):\n";
  disp.print(std::cout);

  // Sensitivity: which parameter moves the fusion disparity most?
  const auto sens = disparity_sensitivity(sys, sys_fusion);
  std::cout << "\nTop disparity sensitivities at obstacle_fusion "
               "(halving period / WCET):\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sens.size()); ++i) {
    const SensitivityEntry& e = sens[i];
    std::cout << "  " << sys.task(e.task).name << ' '
              << (e.param == PerturbedParam::kPeriod ? "period" : "WCET")
              << ": " << to_string(e.baseline) << " -> "
              << (e.schedulable ? to_string(e.perturbed) : "unschedulable")
              << '\n';
  }

  // What can buffering achieve at the fusion point?
  const MultiBufferDesign mbd = engine.optimize_buffers(sys_fusion);
  std::cout << "\nBuffer design at obstacle_fusion: "
            << to_string(mbd.baseline_bound) << " -> "
            << to_string(mbd.optimized_bound) << " via "
            << mbd.channels.size() << " buffered channel(s)\n";

  // Requirement: fused sensor samples within 430ms.  Buffering barely
  // helps here — the dominant pair's sampling windows (LiDAR vs GNSS
  // localization) are each hundreds of ms *wide*, and window alignment
  // shifts windows, it cannot shrink them.  The expected outcome is a
  // violation; the sensitivity ranking above already points at the
  // LiDAR/segmentation rate as the real knob.
  const Duration budget = Duration::ms(430);
  {
    const RequirementsReport rr = verify_disparity_requirements(
        sys, {{sys_fusion, budget}}, rta.response_time);
    const RequirementOutcome& out = rr.outcomes.front();
    std::cout << "\nRequirement: disparity(obstacle_fusion) <= "
              << to_string(budget) << ": "
              << (out.status == RequirementStatus::kViolated ? "VIOLATED"
                                                             : "satisfied")
              << " (bound " << to_string(out.final_bound)
              << ") — buffers cannot shrink window widths\n";
  }

  // Apply the sensitivity-suggested fix: run the LiDAR pipeline at twice
  // the rate (sensor, cloud filter, segmentation and its CAN message).
  TaskGraph fixed = sys;
  for (TaskId id = 0; id < fixed.num_tasks(); ++id) {
    const std::string& name = fixed.task(id).name;
    if (name == "lidar" || name == "cloud_filter" || name == "segmentation" ||
        name == "msg_segmentation_obstacle_fusion") {
      fixed.task(id).period = fixed.task(id).period / 2;
    }
  }
  const AnalysisEngine fixed_engine(fixed);
  if (!fixed_engine.schedulable()) {
    std::cerr << "fixed system is not schedulable\n";
    return 1;
  }
  const RequirementsReport rr2 = verify_disparity_requirements(
      fixed, {{sys_fusion, budget}}, fixed_engine.response_times());
  const RequirementOutcome& out2 = rr2.outcomes.front();
  std::cout << "After doubling the LiDAR pipeline rate: ";
  switch (out2.status) {
    case RequirementStatus::kSatisfied:
      std::cout << "satisfied (bound " << to_string(out2.bound) << ")\n";
      break;
    case RequirementStatus::kFixedByBuffers:
      std::cout << "satisfied with buffers";
      for (const ChannelBuffer& cb : out2.buffers) {
        std::cout << ' ' << fixed.task(cb.from).name << "->"
                  << fixed.task(cb.to).name << ":" << cb.buffer_size;
      }
      std::cout << " (bound " << to_string(out2.bound) << " -> "
                << to_string(out2.final_bound) << ")\n";
      break;
    case RequirementStatus::kViolated:
      std::cout << "still VIOLATED (bound " << to_string(out2.final_bound)
                << ")\n";
      return 1;
  }

  // Simulation cross-check on the final (fixed + possibly buffered) system.
  SimOptions sopt;
  sopt.warmup = Duration::s(4);
  sopt.duration = Duration::s(12);
  const SimResult sim = Simulator(rr2.final_graph, sopt).run();
  std::cout << "\nSimulated disparity at obstacle_fusion: "
            << to_string(sim.max_disparity[sys_fusion]) << " (bound "
            << to_string(out2.final_bound) << ")\n";
  if (sim.max_disparity[sys_fusion] > out2.final_bound) {
    std::cerr << "bound violated!\n";
    return 1;
  }

  // Gantt of the first 100 ms of the original system (vision ECUs only
  // would be cleaner, but the full picture is instructive).
  SimOptions gopt;
  gopt.duration = Duration::ms(100);
  gopt.record_trace = true;
  gopt.exec_model = ExecTimeModel::kWorstCase;
  const SimResult gtrace = Simulator(sys, gopt).run();
  GanttOptions gv;
  gv.from = Duration::zero();
  gv.to = Duration::ms(100);
  gv.width = 100;
  std::cout << "\nFirst 100ms ('#' executing, '^' release):\n"
            << render_gantt(sys, gtrace.trace, gv);

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::cerr << "cannot open metrics file '" << metrics_path << "'\n";
      return 1;
    }
    obs::JsonWriter w(out);
    w.begin_object();
    w.key("engine");
    engine.metrics().write_json(w);
    w.key("global");
    obs::MetricsRegistry::global().snapshot().write_json(w);
    w.end_object();
    w.done();
    out << "\n";
    std::cout << "\nmetrics written to " << metrics_path << '\n';
  }
  return 0;
}
