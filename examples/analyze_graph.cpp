// Full analysis of a cause-effect graph loaded from the ceta text format:
// response times, per-ECU utilization, end-to-end latency bounds per
// chain, worst-case time disparity (P-diff and S-diff) for every task that
// fuses two or more chains, and a buffer-design suggestion.
//
// Usage:
//   analyze_graph <graph.txt> [--sim SECONDS] [--dot]
//                 [--require <task>=<ms> ...]
//                 [--trace PATH] [--metrics PATH]
//   analyze_graph --demo [--sim SECONDS] [--dot] [--require fuse=200]
//
// --trace writes a Chrome-trace JSON (load in https://ui.perfetto.dev or
// chrome://tracing) of the whole run; CETA_TRACE=<path> in the
// environment does the same without the flag.  --metrics writes a JSON
// snapshot of the engine's cache counters plus the process-wide registry.
//
// --require checks a worst-case disparity budget for a task and, if
// violated, applies the buffer-design remedy of §IV automatically.
//
// Graph format (see graph/serialize.hpp):
//   task <name> <wcet_ns> <bcet_ns> <period_ns> <offset_ns> <prio> <ecu>
//   edge <from> <to> [buffer_size]

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "chain/critical.hpp"
#include "disparity/requirements.hpp"
#include "engine/analysis_engine.hpp"
#include "experiments/table.hpp"
#include "graph/dot.hpp"
#include "graph/paths.hpp"
#include "graph/serialize.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"
#include "sim/engine.hpp"

namespace {

const char* kDemoGraph = R"(# demo: two sensors fused, then actuated
task camera  0       0       33000000  0 0 -1
task lidar   0       0       100000000 0 0 -1
task detect  8000000 4000000 33000000  0 0 0
task cloud   20000000 9000000 100000000 0 0 1
task fuse    5000000 2000000 50000000  0 0 2
task act     2000000 1000000 10000000  0 1 2
edge camera detect
edge lidar cloud
edge detect fuse
edge cloud fuse
edge fuse act
)";

std::string chain_to_string(const ceta::TaskGraph& g, const ceta::Path& p) {
  std::string out;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i) out += " -> ";
    out += g.task(p[i]).name;
  }
  return out;
}

/// --metrics: engine cache counters + the process-wide registry, one JSON
/// document.
void write_metrics_file(const std::string& path,
                        const ceta::AnalysisEngine& engine) {
  std::ofstream out(path);
  if (!out) throw ceta::Error("cannot open metrics file '" + path + "'");
  ceta::obs::JsonWriter w(out);
  w.begin_object();
  w.key("engine");
  engine.metrics().write_json(w);
  w.key("global");
  ceta::obs::MetricsRegistry::global().snapshot().write_json(w);
  w.end_object();
  w.done();
  out << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ceta;

  std::string path;
  bool demo = false;
  bool dot = false;
  long sim_seconds = 5;
  std::string trace_path;
  std::string metrics_path;
  std::vector<std::pair<std::string, long>> requirements;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--dot") {
      dot = true;
    } else if (arg == "--sim" && i + 1 < argc) {
      sim_seconds = std::atol(argv[++i]);
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--require" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::cerr << "--require expects <task>=<ms>\n";
        return 2;
      }
      requirements.emplace_back(spec.substr(0, eq),
                                std::atol(spec.c_str() + eq + 1));
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "usage: " << argv[0]
                << " <graph.txt> | --demo  [--sim SECONDS] [--dot]"
                   " [--require task=ms ...] [--trace PATH]"
                   " [--metrics PATH]\n";
      return 2;
    }
  }
  if (!demo && path.empty()) {
    std::cerr << "no input graph; try --demo\n";
    return 2;
  }

  if (!trace_path.empty()) {
    // CETA_TRACE may already have started the tracer (and registered its
    // export-at-exit hook); --trace then just re-points the output path.
    const bool env_active = obs::Tracer::enabled();
    obs::Tracer::global().start(trace_path);
    if (!env_active) {
      std::atexit([] { (void)obs::Tracer::global().stop(); });
    }
  }

  std::string text;
  if (demo) {
    text = kDemoGraph;
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open '" << path << "'\n";
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  }

  TaskGraph g;
  try {
    g = graph_from_text(text);
    g.validate();
  } catch (const Error& e) {
    std::cerr << "invalid graph: " << e.what() << '\n';
    return 1;
  }
  if (dot) {
    std::cout << to_dot(g) << '\n';
  }

  // One engine serves every analysis below; the RTA, chain sets and chain
  // bounds are computed once and shared.
  const AnalysisEngine engine(g);
  const RtaResult& rta = engine.rta();
  ConsoleTable sched({"task", "T", "WCET", "R", "status"});
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const Task& t = g.task(id);
    sched.add_row({t.name, to_string(t.period), to_string(t.wcet),
                   rta.response_time[id] == Duration::max()
                       ? "inf"
                       : to_string(rta.response_time[id]),
                   rta.schedulable[id] ? "ok" : "MISS"});
  }
  std::cout << "Schedulability (non-preemptive fixed priority):\n";
  sched.print(std::cout);
  for (const EcuId ecu : resources_of(g)) {
    std::cout << "  ECU " << ecu
              << " utilization: " << fmt_percent(resource_utilization(g, ecu))
              << '\n';
  }
  if (!rta.all_schedulable) {
    std::cerr << "\ngraph is not schedulable; disparity bounds need finite "
                 "response times\n";
    return 1;
  }

  // Per-chain latency bounds to each sink; the critical (max-WCBT) chain
  // per sink is starred.
  std::cout << "\nEnd-to-end chains (* = critical):\n";
  ConsoleTable lat({"chain", "WCBT", "BCBT", "max age", "max reaction"});
  for (const TaskId sink : g.sinks()) {
    const CriticalChain crit = critical_chain(g, sink, rta.response_time);
    for (const Path& chain : engine.chains(sink)) {
      const LatencyReport r = engine.latency(chain);
      const bool is_critical = chain == crit.chain;
      lat.add_row({chain_to_string(g, chain) + (is_critical ? " *" : ""),
                   to_string(r.backward.wcbt), to_string(r.backward.bcbt),
                   to_string(r.max_data_age),
                   to_string(r.max_reaction_time)});
    }
  }
  lat.print(std::cout);

  // Disparity of every fusing task.
  std::cout << "\nWorst-case time disparity (fusing tasks):\n";
  ConsoleTable disp({"task", "chains", "P-diff", "S-diff", "optimized",
                     "buffers"});
  // All fusing tasks are analyzed as one batch over the engine's thread
  // pool; the P-diff pass reuses the same cached chain bounds.
  const std::vector<TaskId> fusing = engine.fusing_tasks();
  DisparityOptions popt;
  popt.method = DisparityMethod::kIndependent;
  const std::vector<DisparityReport> preports =
      engine.disparity_all(fusing, popt);
  const std::vector<DisparityReport> sreports = engine.disparity_all(fusing);
  for (std::size_t i = 0; i < fusing.size(); ++i) {
    const TaskId id = fusing[i];
    const MultiBufferDesign d = engine.optimize_buffers(id);
    std::string buffers;
    for (const ChannelBuffer& cb : d.channels) {
      if (!buffers.empty()) buffers += ", ";
      buffers += g.task(cb.from).name + "->" + g.task(cb.to).name + ":" +
                 std::to_string(cb.buffer_size);
    }
    if (buffers.empty()) buffers = "-";
    disp.add_row({g.task(id).name, std::to_string(sreports[i].chains.size()),
                  to_string(preports[i].worst_case),
                  to_string(sreports[i].worst_case),
                  to_string(d.optimized_bound), buffers});
  }
  if (!fusing.empty()) {
    disp.print(std::cout);
  } else {
    std::cout << "  (no task fuses two or more source chains)\n";
  }

  // Requirement verification with automatic buffer remediation.
  if (!requirements.empty()) {
    std::vector<DisparityRequirement> reqs;
    for (const auto& [name, ms] : requirements) {
      bool found = false;
      for (TaskId id = 0; id < g.num_tasks(); ++id) {
        if (g.task(id).name == name) {
          reqs.push_back({id, Duration::ms(ms)});
          found = true;
          break;
        }
      }
      if (!found) {
        std::cerr << "--require: unknown task '" << name << "'\n";
        return 2;
      }
    }
    const RequirementsReport rr =
        verify_disparity_requirements(g, reqs, rta.response_time);
    std::cout << "\nRequirements:\n";
    for (const RequirementOutcome& out : rr.outcomes) {
      std::cout << "  " << g.task(out.requirement.task).name << " <= "
                << to_string(out.requirement.max_disparity) << ": ";
      switch (out.status) {
        case RequirementStatus::kSatisfied:
          std::cout << "satisfied (bound " << to_string(out.bound) << ")";
          break;
        case RequirementStatus::kFixedByBuffers: {
          std::cout << "violated (bound " << to_string(out.bound)
                    << ") -> fixed by buffers:";
          for (const ChannelBuffer& cb : out.buffers) {
            std::cout << ' ' << g.task(cb.from).name << "->"
                      << g.task(cb.to).name << ":" << cb.buffer_size;
          }
          std::cout << " (new bound " << to_string(out.final_bound) << ")";
          break;
        }
        case RequirementStatus::kViolated:
          std::cout << "VIOLATED (bound " << to_string(out.final_bound)
                    << ")";
          break;
      }
      std::cout << '\n';
    }
    if (!rr.all_satisfied) return 1;
  }

  // Optional simulation cross-check of every fusing task.
  if (sim_seconds > 0) {
    SimOptions sopt;
    sopt.duration = Duration::s(sim_seconds);
    const SimResult res = Simulator(g, sopt).run();
    std::cout << "\nSimulation (" << sim_seconds
              << "s, uniform execution times):\n";
    bool safe = true;
    for (const TaskId id : fusing) {
      const Duration bound = engine.disparity(id).worst_case;  // cache hit
      std::cout << "  " << g.task(id).name << ": measured "
                << to_string(res.max_disparity[id]) << "  (bound "
                << to_string(bound) << ")\n";
      safe = safe && res.max_disparity[id] <= bound;
    }
    if (!safe) {
      std::cerr << "BOUND VIOLATION — please report this as a bug\n";
      return 1;
    }
  }

  if (!metrics_path.empty()) {
    write_metrics_file(metrics_path, engine);
    std::cout << "\nmetrics written to " << metrics_path << '\n';
  }
  return 0;
}
