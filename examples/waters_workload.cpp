// Generate a WATERS 2015 automotive workload on a random single-sink
// cause-effect graph (the evaluation setup of §V), print the task set,
// and analyze the sink's worst-case time disparity.
//
// Usage: waters_workload [num_tasks] [num_ecus] [seed]

#include <cstdlib>
#include <iostream>

#include "engine/analysis_engine.hpp"
#include "experiments/table.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

int main(int argc, char** argv) {
  using namespace ceta;

  const std::size_t num_tasks =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 15;
  const int num_ecus = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::uint64_t seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;

  Rng rng(seed);
  TaskGraph g;
  TaskId sink = 0;
  // Resample until the sink actually fuses several sensors.
  for (int attempt = 0;; ++attempt) {
    GnmDagOptions gopt;
    gopt.num_tasks = num_tasks;
    g = gnm_random_dag(gopt, rng);
    WatersAssignOptions wopt;
    wopt.num_ecus = num_ecus;
    assign_waters_parameters(g, wopt, rng);
    sink = g.sinks().front();
    if (count_source_chains(g, sink) >= 2 &&
        count_source_chains(g, sink) <= 2000) {
      break;
    }
    if (attempt > 100) {
      std::cerr << "could not draw an admissible graph\n";
      return 1;
    }
  }

  ConsoleTable table({"task", "T", "WCET", "BCET", "ECU", "prio"});
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const Task& t = g.task(id);
    table.add_row({t.name, to_string(t.period), to_string(t.wcet),
                   to_string(t.bcet),
                   t.ecu == kNoEcu ? "-" : std::to_string(t.ecu),
                   t.ecu == kNoEcu ? "-" : std::to_string(t.priority)});
  }
  std::cout << "WATERS task set (seed " << seed << ", " << g.num_edges()
            << " edges):\n";
  table.print(std::cout);

  const AnalysisEngine engine(g);
  if (!engine.schedulable()) {
    std::cerr << "unschedulable draw (unexpected for WATERS utilizations)\n";
    return 1;
  }
  for (const EcuId ecu : resources_of(g)) {
    std::cout << "ECU " << ecu << " utilization: "
              << fmt_percent(resource_utilization(g, ecu), 3) << '\n';
  }

  DisparityOptions opt;
  opt.method = DisparityMethod::kIndependent;
  const Duration pdiff = engine.disparity(sink, opt).worst_case;
  const DisparityReport rep = engine.disparity(sink);
  std::cout << "\nSink '" << g.task(sink).name << "' fuses "
            << rep.chains.size() << " chains\n"
            << "  P-diff: " << to_string(pdiff) << '\n'
            << "  S-diff: " << to_string(rep.worst_case) << '\n';

  SimOptions sopt;
  sopt.duration = Duration::s(5);
  sopt.seed = seed;
  const SimResult sim = Simulator(g, sopt).run();
  std::cout << "  Sim(5s): " << to_string(sim.max_disparity[sink]) << '\n';

  return sim.max_disparity[sink] <= rep.worst_case ? 0 : 1;
}
