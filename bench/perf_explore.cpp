// Design-space explorer throughput on the incremental engine.
//
// The tentpole claim of the explorer (explore/explorer.hpp): scoring a
// candidate move as one batched Transaction on a warm AnalysisEngine
// clone costs O(invalidated cache entries), so a local-search campaign
// sustains orders of magnitude more moves/sec than re-analyzing each
// candidate with a freshly constructed engine.  This driver measures both
// sides on the 64-task merged two-chain WATERS reference instance
// (merge_chains_at_sink(33, 32), first schedulable seed):
//
//   * campaigns at growing move budgets, recording best-found disparity
//     per budget (diminishing-returns curve);
//   * incremental moves/sec of the largest campaign, against a
//     fresh-engine-per-evaluation baseline replaying archived
//     configurations — the bench FAILS (nonzero exit) below 5x;
//   * the determinism contract: one seed, 1 thread vs default
//     concurrency, bit-identical Pareto archives (entries, keys, epochs);
//   * the revalidation contract: every archived delta replays onto a
//     fresh engine to exactly the archived objective vector;
//   * a hypervolume proxy of the final front against the start point
//     (sum over entries of the product of per-objective normalized
//     improvements; overlaps are not subtracted — a monotone coverage
//     indicator, not an exact hypervolume).
//
// Emits BENCH_explore.json (schema-checked by tests/check_bench_json.cpp
// mode "explore").  --fast shrinks budgets for smoke runs; --paper grows
// them toward the 10^5+-move campaigns of the title claim.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "engine/analysis_engine.hpp"
#include "engine/incremental.hpp"
#include "engine/thread_pool.hpp"
#include "explore/explorer.hpp"
#include "graph/generator.hpp"
#include "waters/generator.hpp"

namespace {

using ceta::AnalysisEngine;
using ceta::Duration;
using ceta::Rng;
using ceta::TaskGraph;
using ceta::TaskId;
namespace ex = ceta::explore;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Hypervolume proxy: Σ over entries of Π_dim (ref - v) / ref against the
/// nadir reference point (component-wise worst over front ∪ {start},
/// padded 5%), so every non-dominated entry contributes positively.
double hypervolume_proxy(const std::vector<ex::ArchiveEntry>& front,
                         const ex::Objectives& start) {
  ex::Objectives nadir = start;
  for (const ex::ArchiveEntry& e : front) {
    nadir.disparity = std::max(nadir.disparity, e.objectives.disparity);
    nadir.data_age = std::max(nadir.data_age, e.objectives.data_age);
    nadir.memory = std::max(nadir.memory, e.objectives.memory);
  }
  const auto gain = [](std::int64_t r, std::int64_t v) {
    const double ref = static_cast<double>(r) * 1.05 + 1.0;
    return std::max(0.0, (ref - static_cast<double>(v)) / ref);
  };
  double hv = 0.0;
  for (const ex::ArchiveEntry& e : front) {
    hv += gain(nadir.disparity.count(), e.objectives.disparity.count()) *
          gain(nadir.data_age.count(), e.objectives.data_age.count()) *
          gain(nadir.memory, e.objectives.memory);
  }
  return hv;
}

}  // namespace

int main(int argc, char** argv) {
  const ceta::bench::CliOptions cli = ceta::bench::parse_cli(argc, argv);
  const std::uint64_t seed = cli.seed != 0 ? cli.seed : 42;

  const std::vector<std::size_t> kBudgets =
      cli.paper ? std::vector<std::size_t>{512, 2048, 16384}
                : (cli.fast ? std::vector<std::size_t>{32, 64, 192}
                            : std::vector<std::size_t>{128, 512, 2048});
  const std::size_t kRestarts = cli.fast ? 4 : 8;
  const std::size_t kFreshEvals = cli.fast ? 64 : 256;

  // The 64-task reference instance: two WATERS chains of 33 and 32 tasks
  // sharing their sink, first schedulable parameterization.
  std::uint64_t waters_seed = 1;
  TaskGraph g;
  for (;; ++waters_seed) {
    g = ceta::merge_chains_at_sink(33, 32);
    Rng rng(waters_seed);
    ceta::assign_waters_parameters(g, ceta::WatersAssignOptions{}, rng);
    if (AnalysisEngine probe(g); probe.schedulable()) break;
  }
  const TaskId sink = g.sinks().front();

  AnalysisEngine base(g);
  ceta::seed_priorities(base);
  const TaskGraph seeded = base.graph();  // Audsley-seeded replay base

  ex::ExploreOptions opt;
  opt.seed = seed;
  opt.restarts = kRestarts;

  // --- budget sweep: best disparity per move budget ----------------------
  struct BudgetPoint {
    std::size_t moves_budget = 0;
    Duration best_disparity = Duration::zero();
    std::size_t archive_size = 0;
    double wall_seconds = 0.0;
  };
  std::vector<BudgetPoint> points;
  ex::ExploreResult last;
  double last_wall = 0.0;
  for (const std::size_t budget : kBudgets) {
    opt.moves_per_restart = budget;
    const auto t0 = std::chrono::steady_clock::now();
    last = ex::explore(base, sink, opt);
    last_wall = seconds_since(t0);
    BudgetPoint p;
    p.moves_budget = budget * kRestarts;
    p.best_disparity = last.archive.empty()
                           ? last.start.disparity
                           : last.archive.front().objectives.disparity;
    p.archive_size = last.archive.size();
    p.wall_seconds = last_wall;
    points.push_back(p);
  }
  const ex::ExploreResult& ref = last;  // largest budget = timing campaign

  const double moves_per_sec =
      static_cast<double>(ref.stats.proposed) / last_wall;
  const double evals_per_sec =
      static_cast<double>(ref.stats.evaluations) / last_wall;

  // --- fresh-engine-per-evaluation baseline ------------------------------
  // Replay archived configurations (cyclically) with one freshly
  // constructed engine per evaluation — what every move would cost
  // without the incremental commit/rollback path.
  std::size_t fresh_evals = 0;
  const auto t_fresh = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kFreshEvals; ++i) {
    const ex::ArchiveEntry& e = ref.archive[i % ref.archive.size()];
    (void)ex::replay_objectives(seeded, e, sink, opt);
    ++fresh_evals;
  }
  const double fresh_wall = seconds_since(t_fresh);
  const double fresh_per_sec = static_cast<double>(fresh_evals) / fresh_wall;
  const double speedup = evals_per_sec / fresh_per_sec;

  // --- revalidation: every archived delta reproduces its objectives -----
  bool revalidate_ok = true;
  for (const ex::ArchiveEntry& e : ref.archive) {
    if (!(ex::replay_objectives(seeded, e, sink, opt) == e.objectives)) {
      revalidate_ok = false;
      std::cerr << "perf_explore: archive entry key " << e.key
                << " does not revalidate\n";
    }
  }

  // --- determinism: same seed, 1 thread vs N threads ---------------------
  opt.moves_per_restart = kBudgets[1];
  opt.num_threads = 1;
  const ex::ExploreResult serial = ex::explore(base, sink, opt);
  opt.num_threads = ceta::ThreadPool::default_concurrency();
  const ex::ExploreResult pooled = ex::explore(base, sink, opt);
  const bool determinism_ok = serial.archive == pooled.archive;
  if (!determinism_ok) {
    std::cerr << "perf_explore: 1-thread and " << opt.num_threads
              << "-thread archives differ (" << serial.archive.size() << " vs "
              << pooled.archive.size() << " entries)\n";
  }

  const double hv = hypervolume_proxy(ref.archive, ref.start);
  const bool speedup_ok = speedup >= 5.0;
  if (!speedup_ok) {
    std::cerr << "perf_explore: incremental/fresh speedup " << speedup
              << " below the 5x gate\n";
  }

  std::cout << "perf_explore: " << g.num_tasks() << " tasks, waters seed "
            << waters_seed << "\n"
            << "  incremental: " << ref.stats.proposed << " moves ("
            << ref.stats.evaluations << " evals) in " << last_wall << " s = "
            << moves_per_sec << " moves/sec, " << evals_per_sec
            << " evals/sec\n"
            << "  fresh:       " << fresh_evals << " evals in " << fresh_wall
            << " s = " << fresh_per_sec << " evals/sec\n"
            << "  speedup " << speedup << "x (gate 5x), archive "
            << ref.archive.size() << " entries, hypervolume proxy " << hv
            << "\n"
            << "  best disparity: start " << ref.start.disparity.count()
            << " ns -> " << points.back().best_disparity.count() << " ns\n"
            << "  revalidate " << (revalidate_ok ? "ok" : "FAIL")
            << ", determinism " << (determinism_ok ? "ok" : "FAIL") << "\n";

  ceta::bench::write_json_file("BENCH_explore.json", [&](ceta::obs::JsonWriter&
                                                             w) {
    w.member("bench", "explore");
    w.member("tasks", static_cast<std::uint64_t>(g.num_tasks()));
    w.member("sink", static_cast<std::uint64_t>(sink));
    w.member("waters_seed", waters_seed);
    w.member("seed", seed);
    w.member("restarts", static_cast<std::uint64_t>(kRestarts));
    w.member("threads",
             static_cast<std::uint64_t>(ceta::ThreadPool::default_concurrency()));
    w.key("budgets");
    w.begin_array();
    for (const BudgetPoint& p : points) {
      w.begin_object();
      w.member("moves_budget", static_cast<std::uint64_t>(p.moves_budget));
      w.member("best_disparity_ns", p.best_disparity.count());
      w.member("archive_size", static_cast<std::uint64_t>(p.archive_size));
      w.member("wall_seconds", p.wall_seconds);
      w.end_object();
    }
    w.end_array();
    w.member("start_disparity_ns", ref.start.disparity.count());
    w.member("moves", ref.stats.proposed);
    w.member("evaluations", ref.stats.evaluations);
    w.member("accepted", ref.stats.accepted);
    w.member("rolled_back", ref.stats.rolled_back);
    w.member("wall_seconds", last_wall);
    w.member("moves_per_sec_incremental", moves_per_sec);
    w.member("evals_per_sec_incremental", evals_per_sec);
    w.member("fresh_evals", static_cast<std::uint64_t>(fresh_evals));
    w.member("fresh_wall_seconds", fresh_wall);
    w.member("evals_per_sec_fresh", fresh_per_sec);
    w.member("speedup", speedup);
    w.member("speedup_gate", 5.0);
    w.member("archive_size", static_cast<std::uint64_t>(ref.archive.size()));
    w.member("hypervolume_proxy", hv);
    w.member("revalidate_ok", revalidate_ok);
    w.member("determinism_ok", determinism_ok);
    ceta::bench::write_metrics_member(
        w, "metrics", base.metrics_registry().snapshot());
  });

  return (revalidate_ok && determinism_ok && speedup_ok) ? 0 : 1;
}
