// Fig. 6(b) — incremental ratio of the analytical bounds over the
// simulated lower bound: (bound − Sim) / Sim, per method, on both the GNM
// and the Fig. 1-shaped funnel topology (see fig6a_disparity_abs.cpp for
// why both are reported).
//
// Expected shape (paper): S-diff's ratio markedly below P-diff's and
// generally under ~50% — most visible on the funnel topology.

#include <iostream>

#include "bench_util.hpp"
#include "experiments/fig6ab.hpp"
#include "experiments/table.hpp"

int main(int argc, char** argv) {
  using namespace ceta;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);

  bool all_ok = true;
  std::string csv;
  for (const Fig6Topology topology :
       {Fig6Topology::kGnm, Fig6Topology::kFunnel}) {
    Fig6abConfig cfg;
    cfg.topology = topology;
    cfg.path_cap = 2'000;
    cfg.graphs_per_point = 5;
    cfg.offsets_per_graph = 5;
    cfg.sim_duration = Duration::s(10);
    if (cli.fast) {
      cfg.task_counts = {5, 15, 25};
      cfg.graphs_per_point = 2;
      cfg.offsets_per_graph = 2;
      cfg.sim_duration = Duration::ms(500);
    } else if (cli.paper) {
      cfg.graphs_per_point = 10;
      cfg.offsets_per_graph = 10;
      cfg.sim_duration = Duration::s(60);
    }
    if (cli.seed) cfg.seed = cli.seed;

    const char* name =
        topology == Fig6Topology::kGnm ? "gnm" : "funnel (Fig. 1-shaped)";
    std::cout << "Fig 6(b) [" << name << "]: incremental ratio vs Sim "
              << "(mean over " << cfg.graphs_per_point << " graphs)\n\n";

    const auto points = run_fig6ab(cfg, [](const std::string& msg) {
      std::cerr << "  [" << msg << "]\n";
    });

    ConsoleTable table({"tasks", "P-diff ratio", "S-diff ratio"});
    for (const Fig6abPoint& p : points) {
      table.add_row({std::to_string(p.num_tasks), fmt_percent(p.pdiff_ratio),
                     fmt_percent(p.sdiff_ratio)});
      all_ok = all_ok && p.sdiff_ratio <= p.pdiff_ratio;
    }
    table.print(std::cout);
    std::cout << '\n';
    csv += std::string("# topology: ") + name + "\n" + table.to_csv();
  }

  std::cout << "shape check (S-diff ratio <= P-diff ratio): "
            << (all_ok ? "OK" : "VIOLATED") << '\n';
  if (!cli.csv_path.empty()) {
    write_file(cli.csv_path, csv);
    std::cout << "csv written to " << cli.csv_path << '\n';
  }
  return all_ok ? 0 : 1;
}
