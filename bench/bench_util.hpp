// Tiny command-line helpers shared by the figure-reproduction benches,
// plus a minimal JSON emitter for machine-readable bench results
// (BENCH_*.json).
//
// Flags:
//   --fast        smaller sweep for smoke runs
//   --paper       closer to the paper's scale (slow: minutes)
//   --seed N      master seed
//   --csv PATH    also write the table as CSV

#pragma once

#include <cstdint>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

namespace ceta::bench {

/// Flat JSON object builder — just enough for bench result files; keys are
/// emitted in insertion order and must not need escaping.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, double value) {
    std::ostringstream os;
    os << value;
    return add_raw(key, os.str());
  }
  JsonObject& add(const std::string& key, std::int64_t value) {
    return add_raw(key, std::to_string(value));
  }
  JsonObject& add(const std::string& key, const std::string& value) {
    return add_raw(key, "\"" + value + "\"");
  }
  /// Nest a sub-object (or any preformatted JSON value).
  JsonObject& add_raw(const std::string& key, const std::string& json) {
    body_ += (body_.empty() ? "" : ",\n  ");
    body_ += "\"" + key + "\": " + json;
    return *this;
  }
  std::string str() const { return "{\n  " + body_ + "\n}\n"; }

 private:
  std::string body_;
};

struct CliOptions {
  bool fast = false;
  bool paper = false;
  std::uint64_t seed = 0;  // 0 = keep the harness default
  std::string csv_path;
};

inline CliOptions parse_cli(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      opt.fast = true;
    } else if (arg == "--paper") {
      opt.paper = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--csv" && i + 1 < argc) {
      opt.csv_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--fast|--paper] [--seed N] [--csv PATH]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  if (opt.fast && opt.paper) {
    std::cerr << "--fast and --paper are mutually exclusive\n";
    std::exit(2);
  }
  return opt;
}

}  // namespace ceta::bench
