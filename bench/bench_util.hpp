// Tiny command-line helpers shared by the figure-reproduction benches,
// plus the shared emission path for machine-readable bench results
// (BENCH_*.json): every bench serializes through obs::JsonWriter — the
// same writer the trace and metrics exporters use — so there is exactly
// one JSON serialization path in the tree.
//
// Flags:
//   --fast        smaller sweep for smoke runs
//   --paper       closer to the paper's scale (slow: minutes)
//   --seed N      master seed
//   --csv PATH    also write the table as CSV
//
// Built with -DCETA_PROFILE=ON, every bench binary auto-starts the
// process tracer and writes TRACE_<binary>.json next to its BENCH output
// (maybe_start_profile_trace below; called from parse_cli and the custom
// google-benchmark mains).

#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>

#include "common/error.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace ceta::bench {

/// Write one JSON document to `path`: `body` receives an open root object
/// and writes its members; begin/end of the root and done() are handled
/// here.  Throws ceta::Error on I/O failure.
inline void write_json_file(const std::string& path,
                            const std::function<void(obs::JsonWriter&)>& body) {
  std::ofstream out(path);
  if (!out) throw Error("write_json_file: cannot open '" + path + "'");
  obs::JsonWriter w(out);
  w.begin_object();
  body(w);
  w.end_object();
  w.done();
  out << "\n";
  if (!out) throw Error("write_json_file: write to '" + path + "' failed");
}

/// Attach a metrics snapshot as the member `key` of an in-flight object.
inline void write_metrics_member(obs::JsonWriter& w, const std::string& key,
                                 const obs::MetricsSnapshot& snapshot) {
  w.key(key);
  snapshot.write_json(w);
}

/// CETA_PROFILE builds: start the global tracer (unless CETA_TRACE already
/// did) targeting TRACE_<basename of argv0>.json, exported at exit.
inline void maybe_start_profile_trace(const char* argv0) {
#ifdef CETA_PROFILE
  if (obs::Tracer::enabled()) return;  // CETA_TRACE took precedence
  std::string name = argv0 ? argv0 : "bench";
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  obs::Tracer::global().start("TRACE_" + name + ".json");
  std::atexit([] { (void)obs::Tracer::global().stop(); });
#else
  (void)argv0;
#endif
}

struct CliOptions {
  bool fast = false;
  bool paper = false;
  std::uint64_t seed = 0;  // 0 = keep the harness default
  std::string csv_path;
};

inline CliOptions parse_cli(int argc, char** argv) {
  maybe_start_profile_trace(argc > 0 ? argv[0] : nullptr);
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fast") {
      opt.fast = true;
    } else if (arg == "--paper") {
      opt.paper = true;
    } else if (arg == "--seed" && i + 1 < argc) {
      opt.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--csv" && i + 1 < argc) {
      opt.csv_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--fast|--paper] [--seed N] [--csv PATH]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      std::exit(2);
    }
  }
  if (opt.fast && opt.paper) {
    std::cerr << "--fast and --paper are mutually exclusive\n";
    std::exit(2);
  }
  return opt;
}

}  // namespace ceta::bench
