// Fleet driver for the cetad service core: thousands of concurrent named
// sessions under mixed read / mutate / subscribe traffic.
//
// The driver speaks the real wire protocol (JSON payloads through
// ServiceCore::handle) but in-process — no sockets — so the measured
// latencies are the service's own: parse, admission, dispatch, engine
// query, serialization.  Traffic shape:
//
//   * every session is a small two-source fusion graph (5 tasks);
//   * sessions are partitioned across driver threads (parallelism across
//     sessions, deterministic request order within one);
//   * each thread mixes disparity queries, latency queries, graph dumps,
//     WCET/period mutations and subscribe/unsubscribe churn;
//   * a subscribed thread cross-checks a sample of the pushes it receives
//     against an immediate re-query — the push must carry exactly the
//     committed worst case;
//   * at the end, sampled sessions are re-validated against a *fresh*
//     AnalysisEngine built from the session's own serialized graph.
//
// Emits BENCH_service.json (schema-checked by tests/check_bench_json.cpp
// mode "service") with p50/p95/p99 request latencies per traffic class,
// and exits nonzero on any cross-check mismatch.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "engine/analysis_engine.hpp"
#include "engine/thread_pool.hpp"
#include "graph/serialize.hpp"
#include "obs/metrics.hpp"
#include "service/service.hpp"

namespace {

using ceta::AnalysisEngine;
using ceta::Duration;
using ceta::service::ClientId;
using ceta::service::JsonValue;
using ceta::service::Outcome;
using ceta::service::ServiceConfig;
using ceta::service::ServiceCore;

std::string session_graph_text(std::size_t i) {
  // Two sources fusing at F; periods vary per session so the fleet is not
  // one graph analyzed a thousand times.
  const long p0 = 10'000'000 + static_cast<long>(i % 7) * 1'000'000;
  const long p1 = 15'000'000 + static_cast<long>(i % 5) * 1'000'000;
  std::ostringstream os;
  os << "task S0 0 0 " << p0 << " 0 0 -1\n"
     << "task S1 0 0 " << p1 << " 0 0 -1\n"
     << "task A 1000000 500000 " << p0 << " 0 0 0\n"
     << "task B 1000000 500000 " << p1 << " 0 1 0\n"
     << "task F 2000000 1000000 30000000 0 0 1\n"
     << "edge S0 A\nedge S1 B\nedge A F\nedge B F\n";
  return os.str();
}

std::string request(std::uint64_t id, const std::string& op,
                    const std::string& body_members) {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"op\":\"" << op << "\"";
  if (!body_members.empty()) os << "," << body_members;
  os << "}";
  return os.str();
}

/// Parse a reply and return its "result"; abort the bench on an error
/// reply (the driver only sends requests it expects to succeed, except
/// where noted).
JsonValue expect_ok(const std::string& reply) {
  const JsonValue doc = ceta::service::parse_json(reply);
  if (!doc.at("ok").boolean) {
    throw ceta::Error("unexpected error reply: " + reply);
  }
  return doc.at("result");
}

struct ThreadResult {
  std::uint64_t ops = 0;
  std::uint64_t pushes = 0;
  std::uint64_t push_checks = 0;
  std::uint64_t mismatches = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const ceta::bench::CliOptions cli = ceta::bench::parse_cli(argc, argv);
  const std::uint64_t seed = cli.seed != 0 ? cli.seed : 42;

  const std::size_t kSessions = cli.paper ? 4000 : (cli.fast ? 1000 : 1500);
  const std::size_t kTotalOps =
      cli.paper ? 400'000 : (cli.fast ? 30'000 : 120'000);
  // Floor at 4 drivers: even a 1-core CI box must exercise the service's
  // concurrent paths (shared/unique session locks, subscription churn).
  const std::size_t kThreads =
      std::max<std::size_t>(4, ceta::ThreadPool::default_concurrency());

  ServiceConfig cfg;
  cfg.max_sessions = kSessions + 16;
  cfg.engine_threads = 1;  // parallelism comes from concurrent sessions
  ServiceCore core(cfg);

  // --- phase 1: create the fleet -----------------------------------------
  const auto t_create0 = std::chrono::steady_clock::now();
  {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> creators;
    for (std::size_t t = 0; t < kThreads; ++t) {
      creators.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < kSessions;
             i = next.fetch_add(1)) {
          std::ostringstream body;
          body << "\"name\":\"s" << i << "\",\"graph\":\""
               << ceta::obs::JsonWriter::escape(session_graph_text(i)) << "\"";
          expect_ok(core.handle(0, request(i, "create_session", body.str()))
                        .reply);
        }
      });
    }
    for (auto& th : creators) th.join();
  }
  const double create_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_create0)
          .count();
  if (core.session_count() != kSessions) {
    std::cerr << "FAIL: fleet creation lost sessions\n";
    return 1;
  }

  // --- phase 2: mixed traffic --------------------------------------------
  ceta::obs::MetricsRegistry bench_metrics;
  auto& query_hist = bench_metrics.histogram("query_ns");
  auto& mutate_hist = bench_metrics.histogram("mutate_ns");
  auto& subscribe_hist = bench_metrics.histogram("subscribe_ns");

  std::vector<ThreadResult> results(kThreads);
  const std::size_t ops_per_thread = kTotalOps / kThreads;

  const auto t_traffic0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> drivers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      drivers.emplace_back([&, t] {
        const ClientId me = static_cast<ClientId>(t + 1);
        std::mt19937_64 rng(seed * 7919 + t);
        ThreadResult& r = results[t];

        // My sessions: i ≡ t (mod kThreads).
        std::vector<std::size_t> mine;
        for (std::size_t i = t; i < kSessions; i += kThreads) {
          mine.push_back(i);
        }
        // Subscribe to the sink of every 4th owned session up front.
        for (std::size_t k = 0; k < mine.size(); k += 4) {
          const std::string body =
              "\"session\":\"s" + std::to_string(mine[k]) +
              "\",\"sink\":\"F\"";
          expect_ok(core.handle(me, request(1, "subscribe", body)).reply);
        }

        std::uint64_t id = 100;
        for (std::size_t op = 0; op < ops_per_thread; ++op) {
          const std::size_t si = mine[rng() % mine.size()];
          const std::string session = "\"session\":\"s" + std::to_string(si) +
                                      "\"";
          const std::uint32_t dice = static_cast<std::uint32_t>(rng() % 100);
          const auto t0 = std::chrono::steady_clock::now();
          if (dice < 55) {  // disparity query
            expect_ok(
                core.handle(me, request(++id, "disparity",
                                        session + ",\"sink\":\"F\""))
                    .reply);
            query_hist.observe(Duration::ns(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
          } else if (dice < 70) {  // latency query
            expect_ok(core.handle(
                              me, request(++id, "latency",
                                          session +
                                              ",\"chain\":[\"S0\",\"A\",\"F\"]"))
                          .reply);
            query_hist.observe(Duration::ns(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
          } else if (dice < 75) {  // graph dump
            expect_ok(core.handle(me, request(++id, "graph", session)).reply);
            query_hist.observe(Duration::ns(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
          } else if (dice < 90) {  // mutation
            const long wcet = 600'000 + static_cast<long>(rng() % 9) * 100'000;
            const std::string edits =
                ",\"edits\":[{\"kind\":\"set_wcet_range\",\"task\":\"A\","
                "\"bcet_ns\":500000,\"wcet_ns\":" +
                std::to_string(wcet) + "}]";
            const Outcome out =
                core.handle(me, request(++id, "mutate", session + edits));
            mutate_hist.observe(Duration::ns(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
            expect_ok(out.reply);
            r.pushes += out.pushes.size();
            // Cross-check a sample of pushes: the pushed worst case must
            // equal an immediate re-query (no other writer touches this
            // session).
            if (!out.pushes.empty() && (rng() % 8) == 0) {
              const JsonValue push =
                  ceta::service::parse_json(out.pushes.front().payload);
              const JsonValue re = expect_ok(
                  core.handle(me, request(++id, "disparity",
                                          session + ",\"sink\":\"F\""))
                      .reply);
              ++r.push_checks;
              if (push.at("worst_case_ns").number !=
                  re.at("worst_case_ns").number) {
                ++r.mismatches;
              }
            }
          } else {  // subscribe / unsubscribe churn
            const char* op_name = (dice % 2 == 0) ? "subscribe" : "unsubscribe";
            expect_ok(core.handle(me, request(++id, op_name,
                                              session + ",\"sink\":\"F\""))
                          .reply);
            subscribe_hist.observe(Duration::ns(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
          }
          ++r.ops;
        }
      });
    }
    for (auto& th : drivers) th.join();
  }
  const double traffic_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_traffic0)
          .count();

  ThreadResult total;
  for (const ThreadResult& r : results) {
    total.ops += r.ops;
    total.pushes += r.pushes;
    total.push_checks += r.push_checks;
    total.mismatches += r.mismatches;
  }

  // --- phase 3: fresh-engine validation of sampled sessions ---------------
  bool match = total.mismatches == 0;
  {
    std::mt19937_64 rng(seed);
    for (int k = 0; k < 16; ++k) {
      const std::size_t si = rng() % kSessions;
      const std::string session = "\"session\":\"s" + std::to_string(si) +
                                  "\"";
      const JsonValue dump =
          expect_ok(core.handle(0, request(1, "graph", session)).reply);
      AnalysisEngine fresh(ceta::graph_from_text(dump.at("text").string));
      const ceta::DisparityReport expect = fresh.disparity(4);  // F
      const JsonValue got = expect_ok(
          core.handle(0, request(2, "disparity", session + ",\"sink\":\"F\""))
              .reply);
      if (got.at("worst_case_ns").number !=
          static_cast<double>(expect.worst_case.count())) {
        match = false;
        std::cerr << "MISMATCH: session s" << si << " service="
                  << got.at("worst_case_ns").number
                  << " fresh=" << expect.worst_case.count() << "\n";
      }
    }
  }

  const auto query_snap = query_hist.snapshot();
  const auto mutate_snap = mutate_hist.snapshot();
  const auto subscribe_snap = subscribe_hist.snapshot();
  const double ops_per_sec =
      traffic_s > 0 ? static_cast<double>(total.ops) / traffic_s : 0.0;

  ceta::bench::write_json_file("BENCH_service.json", [&](ceta::obs::JsonWriter&
                                                             w) {
    w.member("bench", "service_fleet");
    w.member("mode", cli.paper ? "paper" : (cli.fast ? "fast" : "default"));
    w.member("sessions", static_cast<std::uint64_t>(kSessions));
    w.member("threads", static_cast<std::uint64_t>(kThreads));
    w.member("create_s", create_s);
    w.member("traffic_s", traffic_s);
    w.member("ops", total.ops);
    w.member("ops_per_sec", ops_per_sec);
    w.member("pushes", total.pushes);
    w.member("push_checks", total.push_checks);
    w.member("match", match);
    w.member("query_count", query_snap.count);
    w.member("query_p50_ns", query_snap.p50.count());
    w.member("query_p95_ns", query_snap.p95.count());
    w.member("query_p99_ns", query_snap.p99.count());
    w.member("mutate_count", mutate_snap.count);
    w.member("mutate_p50_ns", mutate_snap.p50.count());
    w.member("mutate_p95_ns", mutate_snap.p95.count());
    w.member("mutate_p99_ns", mutate_snap.p99.count());
    w.member("subscribe_count", subscribe_snap.count);
    w.member("subscribe_p50_ns", subscribe_snap.p50.count());
    ceta::bench::write_metrics_member(w, "service_metrics",
                                      core.metrics_registry().snapshot());
  });

  std::cout << "service_fleet: " << kSessions << " sessions, " << kThreads
            << " threads, " << total.ops << " ops in " << traffic_s << "s ("
            << static_cast<std::uint64_t>(ops_per_sec) << " ops/s), "
            << total.pushes << " pushes, query p50 "
            << query_snap.p50.count() << "ns p99 " << query_snap.p99.count()
            << "ns, match: " << (match ? "true" : "false") << "\n";
  return match ? 0 : 1;
}
