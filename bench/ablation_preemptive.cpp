// Ablation: dispatching discipline vs disparity bound tightness.
//
// Trade-off being measured: preemption removes blocking (tighter response
// times via the preemptive busy-window RTA) but weakens Lemma 4's same-ECU
// hop refinements — the lower-priority-producer case degrades to θ = T + R,
// and under EDF both refinements vanish.  Each column flips every ECU of
// the same WATERS instance to one discipline through the per-ECU policy
// seam (TaskGraph::set_policy): the RTA, the hop routing and the simulator
// all follow the graph, so the three columns differ *only* in dispatching.
// Under WATERS utilizations the periods dominate, so the disparity bounds
// stay close while the response-time columns separate; the preemption
// counters confirm the simulated systems actually behave differently.

#include <iostream>
#include <numeric>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "engine/analysis_engine.hpp"
#include "experiments/table.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

namespace {

/// The instance with every occupied ECU flipped to `policy`.
ceta::TaskGraph with_policy(const ceta::TaskGraph& g,
                            ceta::SchedPolicy policy) {
  ceta::TaskGraph out = g;
  for (ceta::TaskId id = 0; id < g.num_tasks(); ++id) {
    if (g.task(id).ecu != ceta::kNoEcu) out.set_policy(g.task(id).ecu, policy);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ceta;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  const std::size_t instances = cli.fast ? 3 : 10;
  Rng rng(cli.seed ? cli.seed : 20230405);

  std::cout << "Ablation: non-preemptive vs preemptive FP vs EDF dispatch "
               "(two-chain WATERS fusion on 2 ECUs, means over "
            << instances << " instances)\n\n";

  ConsoleTable table({"chain len", "mean R np[ms]", "mean R p[ms]",
                      "mean R edf[ms]", "S-diff np[ms]", "S-diff p[ms]",
                      "S-diff edf[ms]", "Sim np[ms]", "Sim p[ms]",
                      "Sim edf[ms]", "preempts"});
  for (const std::size_t len : {5u, 10u, 15u, 20u}) {
    OnlineStats r_np, r_p, r_edf, d_np, d_p, d_edf, s_np, s_p, s_edf,
        preempts;
    for (std::size_t i = 0; i < instances; ++i) {
      TaskGraph g = merge_chains_at_sink(len, len);
      WatersAssignOptions wopt;
      wopt.num_ecus = 2;  // denser ECUs -> more contention
      assign_waters_parameters(g, wopt, rng);
      Rng offset_rng = rng.split();
      randomize_offsets(g, offset_rng);
      // Three copies of the same instance, differing only in the per-ECU
      // dispatching discipline; every downstream consumer (RTA, hop
      // routing, simulator) reads the policy from the graph.
      const TaskGraph g_p = with_policy(g, SchedPolicy::kPreemptive);
      const TaskGraph g_edf = with_policy(g, SchedPolicy::kEdf);
      const AnalysisEngine engine_np(g);
      const AnalysisEngine engine_p(g_p);
      const AnalysisEngine engine_edf(g_edf);
      if (!engine_np.schedulable() || !engine_p.schedulable() ||
          !engine_edf.schedulable()) {
        --i;
        continue;
      }
      const TaskId sink = g.sinks().front();

      // Mean per-task WCRT, not max: the lowest-priority task's fixpoint
      // coincides across disciplines at WATERS utilizations (no blocking
      // below it, one interfering job each above it), so the max washes
      // out exactly the blocking-vs-preemption effect being ablated.
      Duration sum_np = Duration::zero();
      Duration sum_p = Duration::zero();
      Duration sum_edf = Duration::zero();
      for (TaskId id = 0; id < g.num_tasks(); ++id) {
        sum_np += engine_np.response_times()[id];
        sum_p += engine_p.response_times()[id];
        sum_edf += engine_edf.response_times()[id];
      }
      const double n = static_cast<double>(g.num_tasks());
      r_np.add(sum_np.as_ms() / n);
      r_p.add(sum_p.as_ms() / n);
      r_edf.add(sum_edf.as_ms() / n);

      // One disparity call per discipline: hop_bound routes the Lemma 4
      // same-ECU refinements by the graph's policy, so no manual
      // kSchedulingAgnostic override is needed anymore.
      d_np.add(engine_np.disparity(sink).worst_case.as_ms());
      d_p.add(engine_p.disparity(sink).worst_case.as_ms());
      d_edf.add(engine_edf.disparity(sink).worst_case.as_ms());

      SimOptions sopt;
      sopt.duration = Duration::s(4);
      sopt.warmup = Duration::s(1);
      sopt.seed = rng.split().seed();
      const SimResult res_np = Simulator(g, sopt).run();
      const SimResult res_p = Simulator(g_p, sopt).run();
      const SimResult res_edf = Simulator(g_edf, sopt).run();
      s_np.add(res_np.max_disparity[sink].as_ms());
      s_p.add(res_p.max_disparity[sink].as_ms());
      s_edf.add(res_edf.max_disparity[sink].as_ms());
      preempts.add(static_cast<double>(
          std::accumulate(res_p.preemptions.begin(), res_p.preemptions.end(),
                          std::int64_t{0})));
    }
    table.add_row({std::to_string(len), fmt_double(r_np.mean(), 3),
                   fmt_double(r_p.mean(), 3), fmt_double(r_edf.mean(), 3),
                   fmt_double(d_np.mean()), fmt_double(d_p.mean()),
                   fmt_double(d_edf.mean()), fmt_double(s_np.mean()),
                   fmt_double(s_p.mean()), fmt_double(s_edf.mean()),
                   fmt_double(preempts.mean(), 0)});
  }
  table.print(std::cout);
  std::cout << "\n'mean R' = mean per-task WCRT bound under that "
               "discipline's RTA; 'preempts' = preemptions observed in the "
               "4s preemptive-FP simulation\n";
  if (!cli.csv_path.empty()) {
    write_file(cli.csv_path, table.to_csv());
  }
  return 0;
}
