// Ablation: non-preemptive vs preemptive fixed priority.
//
// Trade-off being measured: preemption removes blocking (tighter response
// times) but invalidates Lemma 4's non-preemptive hop refinements, so the
// disparity analysis must fall back to the scheduling-agnostic θ = T + R.
// Under WATERS utilizations the periods dominate both, so the bounds are
// close; the preemption counters confirm the simulated systems actually
// behave differently.

#include <iostream>
#include <numeric>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "engine/analysis_engine.hpp"
#include "experiments/table.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

int main(int argc, char** argv) {
  using namespace ceta;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  const std::size_t instances = cli.fast ? 3 : 10;
  Rng rng(cli.seed ? cli.seed : 20230405);

  std::cout << "Ablation: non-preemptive vs preemptive dispatch (two-chain "
               "WATERS fusion on 2 ECUs, means over "
            << instances << " instances)\n\n";

  ConsoleTable table({"chain len", "max R np[ms]", "max R p[ms]",
                      "S-diff np[ms]", "S-diff p[ms]", "Sim np[ms]",
                      "Sim p[ms]", "preempts"});
  for (const std::size_t len : {5u, 10u, 15u, 20u}) {
    OnlineStats r_np, r_p, d_np, d_p, s_np, s_p, preempts;
    for (std::size_t i = 0; i < instances; ++i) {
      TaskGraph g = merge_chains_at_sink(len, len);
      WatersAssignOptions wopt;
      wopt.num_ecus = 2;  // denser ECUs -> more contention
      assign_waters_parameters(g, wopt, rng);
      // Two engines over the same graph, differing only in the dispatch
      // policy of their owned RTA (offsets ignored by the analysis).
      EngineOptions np;
      EngineOptions p;
      p.rta.policy = SchedPolicy::kPreemptive;
      const AnalysisEngine engine_np(g, np);
      const AnalysisEngine engine_p(g, p);
      if (!engine_np.schedulable() || !engine_p.schedulable()) {
        --i;
        continue;
      }
      Rng offset_rng = rng.split();
      randomize_offsets(g, offset_rng);
      const TaskId sink = g.sinks().front();

      Duration worst_np = Duration::zero();
      Duration worst_p = Duration::zero();
      for (TaskId id = 0; id < g.num_tasks(); ++id) {
        worst_np = std::max(worst_np, engine_np.response_times()[id]);
        worst_p = std::max(worst_p, engine_p.response_times()[id]);
      }
      r_np.add(worst_np.as_ms());
      r_p.add(worst_p.as_ms());

      // NP uses Lemma 4 hops; preemptive must use the agnostic hops.
      d_np.add(engine_np.disparity(sink).worst_case.as_ms());
      DisparityOptions d2;
      d2.hop_method = HopBoundMethod::kSchedulingAgnostic;
      d_p.add(engine_p.disparity(sink, d2).worst_case.as_ms());

      SimOptions sopt;
      sopt.duration = Duration::s(4);
      sopt.warmup = Duration::s(1);
      sopt.seed = rng.split().seed();
      const SimResult res_np = Simulator(g, sopt).run();
      sopt.policy = SchedPolicy::kPreemptive;
      const SimResult res_p = Simulator(g, sopt).run();
      s_np.add(res_np.max_disparity[sink].as_ms());
      s_p.add(res_p.max_disparity[sink].as_ms());
      preempts.add(static_cast<double>(
          std::accumulate(res_p.preemptions.begin(), res_p.preemptions.end(),
                          std::int64_t{0})));
    }
    table.add_row({std::to_string(len), fmt_double(r_np.mean(), 3),
                   fmt_double(r_p.mean(), 3), fmt_double(d_np.mean()),
                   fmt_double(d_p.mean()), fmt_double(s_np.mean()),
                   fmt_double(s_p.mean()), fmt_double(preempts.mean(), 0)});
  }
  table.print(std::cout);
  std::cout << "\n'max R' = largest per-task WCRT bound; 'preempts' = "
               "preemptions observed in the 4s preemptive simulation\n";
  if (!cli.csv_path.empty()) {
    write_file(cli.csv_path, table.to_csv());
  }
  return 0;
}
