// Fig. 6(a) — absolute worst-case time disparity on random single-sink
// cause-effect graphs: P-diff (Theorem 1) vs S-diff (Theorem 2) vs Sim
// (simulated lower bound).  Values are means over graphs per point, in ms.
//
// The paper does not pin down the random-graph density or single-sink
// procedure, and the size of the P-diff/S-diff gap depends on how much
// fork-join structure chain pairs share, so the harness reports two
// topologies: the literal GNM reading, and the Fig. 1-shaped "funnel"
// (parallel front + shared tail pipeline) that the S-diff analysis
// targets.  Expected shape in both: P-diff >= S-diff >= Sim; on the
// funnel topology S-diff is far tighter than P-diff.

#include <iostream>

#include "bench_util.hpp"
#include "experiments/fig6ab.hpp"
#include "experiments/table.hpp"

int main(int argc, char** argv) {
  using namespace ceta;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);

  bool all_ok = true;
  std::string csv;
  for (const Fig6Topology topology :
       {Fig6Topology::kGnm, Fig6Topology::kFunnel}) {
    Fig6abConfig cfg;
    cfg.topology = topology;
    cfg.path_cap = 2'000;
    cfg.graphs_per_point = 5;
    cfg.offsets_per_graph = 5;
    cfg.sim_duration = Duration::s(10);
    if (cli.fast) {
      cfg.task_counts = {5, 15, 25};
      cfg.graphs_per_point = 2;
      cfg.offsets_per_graph = 2;
      cfg.sim_duration = Duration::ms(500);
    } else if (cli.paper) {
      cfg.graphs_per_point = 10;
      cfg.offsets_per_graph = 10;
      cfg.sim_duration = Duration::s(60);
    }
    if (cli.seed) cfg.seed = cli.seed;

    const char* name =
        topology == Fig6Topology::kGnm ? "gnm" : "funnel (Fig. 1-shaped)";
    std::cout << "Fig 6(a) [" << name << "]: absolute time disparity "
              << "(mean over " << cfg.graphs_per_point << " graphs, "
              << cfg.offsets_per_graph << " offset runs of "
              << to_string(cfg.sim_duration) << " each)\n\n";

    const auto points = run_fig6ab(cfg, [](const std::string& msg) {
      std::cerr << "  [" << msg << "]\n";
    });

    ConsoleTable table({"tasks", "P-diff[ms]", "S-diff[ms]", "Sim[ms]"});
    for (const Fig6abPoint& p : points) {
      table.add_row({std::to_string(p.num_tasks), fmt_double(p.pdiff_ms),
                     fmt_double(p.sdiff_ms), fmt_double(p.sim_ms)});
      all_ok = all_ok && p.pdiff_ms >= p.sdiff_ms && p.sdiff_ms >= p.sim_ms;
    }
    table.print(std::cout);
    std::cout << '\n';
    csv += std::string("# topology: ") + name + "\n" + table.to_csv();
  }

  std::cout << "shape check (P-diff >= S-diff >= Sim at every point): "
            << (all_ok ? "OK" : "VIOLATED") << '\n';
  if (!cli.csv_path.empty()) {
    write_file(cli.csv_path, csv);
    std::cout << "csv written to " << cli.csv_path << '\n';
  }
  return all_ok ? 0 : 1;
}
