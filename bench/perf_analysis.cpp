// Performance microbenchmarks of the analysis path: response-time
// analysis, chain enumeration, Theorem 1/2 pair bounds, task-level
// disparity analysis and Algorithm 1, across graph sizes.

#include <benchmark/benchmark.h>

#include "chain/critical.hpp"
#include "common/rng.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/buffer_opt.hpp"
#include "disparity/exact.hpp"
#include "disparity/sensitivity.hpp"
#include "graph/algorithms.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "sched/audsley.hpp"
#include "sched/npfp_rta.hpp"
#include "sched/priority.hpp"
#include "waters/generator.hpp"

namespace {

using namespace ceta;

/// Deterministic admissible instance per (size, seed).
TaskGraph make_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (;;) {
    GnmDagOptions gopt;
    gopt.num_tasks = n;
    TaskGraph g = gnm_random_dag(gopt, rng);
    WatersAssignOptions wopt;
    wopt.num_ecus = 4;
    assign_waters_parameters(g, wopt, rng);
    const TaskId sink = g.sinks().front();
    const std::size_t chains = count_source_chains(g, sink);
    if (chains >= 2 && chains <= 500 &&
        analyze_response_times(g).all_schedulable) {
      return g;
    }
  }
}

void BM_ResponseTimeAnalysis(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_response_times(g));
  }
}
BENCHMARK(BM_ResponseTimeAnalysis)->Arg(10)->Arg(20)->Arg(35);

void BM_ChainEnumeration(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 2);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_source_chains(g, sink));
  }
}
BENCHMARK(BM_ChainEnumeration)->Arg(10)->Arg(20)->Arg(35);

void BM_SdiffPairBound(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 3);
  const RtaResult rta = analyze_response_times(g);
  const auto chains = enumerate_source_chains(g, g.sinks().front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sdiff_pair_bound(g, chains[0], chains[1], rta.response_time));
  }
}
BENCHMARK(BM_SdiffPairBound)->Arg(10)->Arg(20)->Arg(35);

void BM_TaskDisparityPdiff(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 4);
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  DisparityOptions opt;
  opt.method = DisparityMethod::kIndependent;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyze_time_disparity(g, sink, rta.response_time, opt));
  }
}
BENCHMARK(BM_TaskDisparityPdiff)->Arg(10)->Arg(20)->Arg(35);

void BM_TaskDisparitySdiff(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 4);
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  DisparityOptions opt;
  opt.method = DisparityMethod::kForkJoin;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyze_time_disparity(g, sink, rta.response_time, opt));
  }
}
BENCHMARK(BM_TaskDisparitySdiff)->Arg(10)->Arg(20)->Arg(35);

void BM_BufferDesign(benchmark::State& state) {
  Rng rng(5);
  TaskGraph g = merge_chains_at_sink(static_cast<std::size_t>(state.range(0)),
                                     static_cast<std::size_t>(state.range(0)));
  WatersAssignOptions wopt;
  assign_waters_parameters(g, wopt, rng);
  const RtaResult rta = analyze_response_times(g);
  const auto chains = enumerate_source_chains(g, g.sinks().front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        design_buffer(g, chains[0], chains[1], rta.response_time));
  }
}
BENCHMARK(BM_BufferDesign)->Arg(5)->Arg(15)->Arg(30);

void BM_CriticalChain(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 6);
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(critical_chain(g, sink, rta.response_time));
  }
}
BENCHMARK(BM_CriticalChain)->Arg(10)->Arg(20)->Arg(35);

void BM_AudsleyAssignment(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    TaskGraph copy = g;
    benchmark::DoNotOptimize(assign_priorities_audsley(copy));
  }
}
BENCHMARK(BM_AudsleyAssignment)->Arg(10)->Arg(20)->Arg(35);

void BM_ExactLetDisparity(benchmark::State& state) {
  Rng rng(8);
  TaskGraph g = merge_chains_at_sink(static_cast<std::size_t>(state.range(0)),
                                     static_cast<std::size_t>(state.range(0)));
  WatersAssignOptions wopt;
  assign_waters_parameters(g, wopt, rng);
  g.set_comm_semantics(CommSemantics::kLet);
  randomize_offsets(g, rng);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_let_disparity(g, sink));
  }
}
BENCHMARK(BM_ExactLetDisparity)->Arg(4)->Arg(8)->Arg(16);

void BM_SensitivityScan(benchmark::State& state) {
  const TaskGraph g = make_graph(12, 9);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(disparity_sensitivity(g, sink));
  }
}
BENCHMARK(BM_SensitivityScan);

void BM_AncestorSubgraph(benchmark::State& state) {
  const TaskGraph g = make_graph(35, 10);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ancestor_subgraph(g, sink));
  }
}
BENCHMARK(BM_AncestorSubgraph);

}  // namespace

BENCHMARK_MAIN();
