// Performance microbenchmarks of the analysis path: response-time
// analysis, chain enumeration, Theorem 1/2 pair bounds, task-level
// disparity analysis and Algorithm 1, across graph sizes — plus the
// AnalysisEngine facade against the free-function path (cold cache, warm
// cache, and disparity_all at several thread counts).  After the
// google-benchmark run, a manual engine-vs-free comparison on a Fig. 6
// style workload is written to BENCH_engine.json, the pairwise kernel
// is timed against the reference analyzer on a 256-chain diamond stack
// (cross-checked bit-for-bit) into BENCH_pairwise.json, and a 64-point
// FIFO-depth sweep through the mutation API is timed against per-point
// fresh-engine rebuilds (again cross-checked bit-for-bit) into
// BENCH_incremental.json, and the DAG-DP disparity backend is checked
// against the kernel and timed on a 10⁴-task ladder into
// BENCH_dagdp.json — the run fails if any comparison ever diverges.

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chain/critical.hpp"
#include "common/rng.hpp"
#include "disparity/analyzer.hpp"
#include "disparity/buffer_opt.hpp"
#include "disparity/dag_dp.hpp"
#include "disparity/exact.hpp"
#include "disparity/pair_kernel.hpp"
#include "disparity/sensitivity.hpp"
#include "engine/analysis_engine.hpp"
#include "engine/thread_pool.hpp"
#include "experiments/table.hpp"
#include "graph/algorithms.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "sched/audsley.hpp"
#include "sched/npfp_rta.hpp"
#include "sched/priority.hpp"
#include "waters/generator.hpp"

namespace {

using namespace ceta;

/// Deterministic admissible instance per (size, seed).
TaskGraph make_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (;;) {
    GnmDagOptions gopt;
    gopt.num_tasks = n;
    TaskGraph g = gnm_random_dag(gopt, rng);
    WatersAssignOptions wopt;
    wopt.num_ecus = 4;
    assign_waters_parameters(g, wopt, rng);
    const TaskId sink = g.sinks().front();
    const std::size_t chains = count_source_chains(g, sink);
    if (chains >= 2 && chains <= 500 &&
        analyze_response_times(g).all_schedulable) {
      return g;
    }
  }
}

void BM_ResponseTimeAnalysis(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_response_times(g));
  }
}
BENCHMARK(BM_ResponseTimeAnalysis)->Arg(10)->Arg(20)->Arg(35);

void BM_ChainEnumeration(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 2);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(enumerate_source_chains(g, sink));
  }
}
BENCHMARK(BM_ChainEnumeration)->Arg(10)->Arg(20)->Arg(35);

void BM_SdiffPairBound(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 3);
  const RtaResult rta = analyze_response_times(g);
  const auto chains = enumerate_source_chains(g, g.sinks().front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sdiff_pair_bound(g, chains[0], chains[1], rta.response_time));
  }
}
BENCHMARK(BM_SdiffPairBound)->Arg(10)->Arg(20)->Arg(35);

void BM_TaskDisparityPdiff(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 4);
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  DisparityOptions opt;
  opt.method = DisparityMethod::kIndependent;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyze_time_disparity(g, sink, rta.response_time, opt));
  }
}
BENCHMARK(BM_TaskDisparityPdiff)->Arg(10)->Arg(20)->Arg(35);

void BM_TaskDisparitySdiff(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 4);
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  DisparityOptions opt;
  opt.method = DisparityMethod::kForkJoin;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyze_time_disparity(g, sink, rta.response_time, opt));
  }
}
BENCHMARK(BM_TaskDisparitySdiff)->Arg(10)->Arg(20)->Arg(35);

void BM_BufferDesign(benchmark::State& state) {
  Rng rng(5);
  TaskGraph g = merge_chains_at_sink(static_cast<std::size_t>(state.range(0)),
                                     static_cast<std::size_t>(state.range(0)));
  WatersAssignOptions wopt;
  assign_waters_parameters(g, wopt, rng);
  const RtaResult rta = analyze_response_times(g);
  const auto chains = enumerate_source_chains(g, g.sinks().front());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        design_buffer(g, chains[0], chains[1], rta.response_time));
  }
}
BENCHMARK(BM_BufferDesign)->Arg(5)->Arg(15)->Arg(30);

void BM_CriticalChain(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 6);
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(critical_chain(g, sink, rta.response_time));
  }
}
BENCHMARK(BM_CriticalChain)->Arg(10)->Arg(20)->Arg(35);

void BM_AudsleyAssignment(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    TaskGraph copy = g;
    benchmark::DoNotOptimize(assign_priorities_audsley(copy));
  }
}
BENCHMARK(BM_AudsleyAssignment)->Arg(10)->Arg(20)->Arg(35);

void BM_ExactLetDisparity(benchmark::State& state) {
  Rng rng(8);
  TaskGraph g = merge_chains_at_sink(static_cast<std::size_t>(state.range(0)),
                                     static_cast<std::size_t>(state.range(0)));
  WatersAssignOptions wopt;
  assign_waters_parameters(g, wopt, rng);
  g.set_comm_semantics(CommSemantics::kLet);
  randomize_offsets(g, rng);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_let_disparity(g, sink));
  }
}
BENCHMARK(BM_ExactLetDisparity)->Arg(4)->Arg(8)->Arg(16);

void BM_SensitivityScan(benchmark::State& state) {
  const TaskGraph g = make_graph(12, 9);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(disparity_sensitivity(g, sink));
  }
}
BENCHMARK(BM_SensitivityScan);

void BM_AncestorSubgraph(benchmark::State& state) {
  const TaskGraph g = make_graph(35, 10);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ancestor_subgraph(g, sink));
  }
}
BENCHMARK(BM_AncestorSubgraph);

// ---- pairwise kernel vs reference -----------------------------------------

/// S → F → `stages` serial diamonds: 2^stages source chains through the
/// sink, every pair sharing the source and the per-stage merge tasks —
/// the dense-joint workload the pairwise kernel targets.  Deterministic
/// hand parameters (one 20ms rate, tiny WCETs over 2 ECUs) keep the
/// instance schedulable by construction, so timings are seed-free.
TaskGraph diamond_stack_graph(std::size_t stages) {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(20);
  TaskId prev = g.add_task(s);

  int prio[2] = {0, 0};
  auto mk = [&](const std::string& name, EcuId ecu) {
    Task t;
    t.name = name;
    t.wcet = Duration::us(200);
    t.bcet = Duration::us(100);
    t.period = Duration::ms(20);
    t.ecu = ecu;
    t.priority = prio[ecu]++;
    return g.add_task(t);
  };
  const TaskId f = mk("F", 0);
  g.add_edge(prev, f);
  prev = f;
  for (std::size_t i = 0; i < stages; ++i) {
    const std::string n = std::to_string(i);
    const TaskId a = mk("A" + n, 0);
    const TaskId b = mk("B" + n, 1);
    const TaskId m = mk("M" + n, 1);
    g.add_edge(prev, a);
    g.add_edge(prev, b);
    g.add_edge(a, m);
    g.add_edge(b, m);
    prev = m;
  }
  g.validate();
  return g;
}

void BM_PairReference(benchmark::State& state) {
  const TaskGraph g =
      diamond_stack_graph(static_cast<std::size_t>(state.range(0)));
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyze_time_disparity(g, sink, rta.response_time));
  }
  state.counters["chains"] = static_cast<double>(
      count_source_chains(g, sink));
}
BENCHMARK(BM_PairReference)->Arg(4)->Arg(6)->Arg(8);

void BM_PairKernel(benchmark::State& state) {
  const TaskGraph g =
      diamond_stack_graph(static_cast<std::size_t>(state.range(0)));
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyze_time_disparity_kernel(g, sink, rta.response_time));
  }
  state.counters["chains"] = static_cast<double>(
      count_source_chains(g, sink));
}
BENCHMARK(BM_PairKernel)->Arg(4)->Arg(6)->Arg(8);

void BM_PairKernelParallel(benchmark::State& state) {
  const TaskGraph g = diamond_stack_graph(8);
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyze_time_disparity_kernel(g, sink, rta.response_time, {}, &pool));
  }
}
BENCHMARK(BM_PairKernelParallel)
    ->Arg(2)
    ->Arg(static_cast<long>(ThreadPool::default_concurrency()));

void BM_PairKernelWorstOnly(benchmark::State& state) {
  // Streaming mode: worst_case without materializing the O(K²) vector.
  const TaskGraph g = diamond_stack_graph(8);
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  DisparityOptions opt;
  opt.keep_pairs = KeepPairs::kWorstOnly;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyze_time_disparity_kernel(g, sink, rta.response_time, opt));
  }
}
BENCHMARK(BM_PairKernelWorstOnly);

// ---- DAG-DP backend --------------------------------------------------------

/// `layers` serial diamonds with every task alone on its own ECU
/// (WCRT = WCET trivially): 1 + 3·layers tasks, 2^layers source chains —
/// far beyond any enumeration cap at the sizes benchmarked here, which is
/// exactly the regime the DP backend exists for.
TaskGraph dagdp_ladder_graph(std::size_t layers) {
  TaskGraph g;
  Task s;
  s.name = "S";
  s.period = Duration::ms(10);
  TaskId prev = g.add_task(s);
  EcuId next_ecu = 0;
  auto mk = [&](const std::string& name) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = Duration::ms(10);
    t.ecu = next_ecu++;
    t.priority = 0;
    return g.add_task(t);
  };
  for (std::size_t i = 0; i < layers; ++i) {
    const std::string n = std::to_string(i);
    const TaskId a = mk("a" + n);
    const TaskId b = mk("b" + n);
    const TaskId j = mk("j" + n);
    g.add_edge(prev, a);
    g.add_edge(prev, b);
    g.add_edge(a, j);
    g.add_edge(b, j);
    prev = j;
  }
  g.validate();
  return g;
}

/// The exact DP combination the huge-graph workloads use: P-diff on full
/// chains, streamed worst pair only.
DisparityOptions dagdp_options() {
  DisparityOptions opt;
  opt.method = DisparityMethod::kIndependent;
  opt.truncation = JointTruncation::kNever;
  opt.keep_pairs = KeepPairs::kWorstOnly;
  opt.backend = DisparityBackend::kDagDp;
  return opt;
}

/// One DP analysis of the ladder sink; 100/1000/10000-task graphs whose
/// chain sets (2^33 .. 2^3333) no enumerator could touch.
void BM_DagDpSerial(benchmark::State& state) {
  const std::size_t layers = static_cast<std::size_t>(state.range(0));
  const TaskGraph g = dagdp_ladder_graph(layers);
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  const DisparityOptions opt = dagdp_options();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analyze_time_disparity_dag_dp(g, sink, rta.response_time, opt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.num_tasks()));
  state.counters["tasks"] = static_cast<double>(g.num_tasks());
}
BENCHMARK(BM_DagDpSerial)->Arg(33)->Arg(333)->Arg(3333);

/// DP-served sinks sharded across the engine pool: disparity_all over a
/// sample of the ladder's junction tasks (each an independent DP run on
/// its own ancestor cone) at 1 vs N workers.
void BM_DagDpParallel(benchmark::State& state) {
  const TaskGraph g = dagdp_ladder_graph(1000);
  EngineOptions eopt;
  eopt.num_threads = static_cast<std::size_t>(state.range(0));
  const AnalysisEngine engine(g, eopt);
  // Every 125th junction: 8 cones from 375 to 3000 tasks.
  std::vector<TaskId> sample;
  for (std::size_t i = 125; i <= 1000; i += 125) {
    sample.push_back(static_cast<TaskId>(3 * i));  // j_{i-1}
  }
  const DisparityOptions opt = dagdp_options();
  for (auto _ : state) {
    const AnalysisEngine fresh(g, eopt);
    benchmark::DoNotOptimize(fresh.disparity_all(sample, opt));
  }
  state.counters["sinks"] = static_cast<double>(sample.size());
}
BENCHMARK(BM_DagDpParallel)
    ->Arg(1)
    ->Arg(static_cast<long>(ThreadPool::default_concurrency()));

// ---- AnalysisEngine vs free functions -------------------------------------

/// Free-function session: RTA + task-level S-diff from scratch (what a
/// caller without the engine pays per analysis).
void BM_FreeFunctionDisparity(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 4);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    const RtaResult rta = analyze_response_times(g);
    benchmark::DoNotOptimize(
        analyze_time_disparity(g, sink, rta.response_time));
  }
}
BENCHMARK(BM_FreeFunctionDisparity)->Arg(10)->Arg(20)->Arg(35);

/// Cold cache: a fresh engine per iteration (graph copy + RTA + analysis;
/// the facade's one-shot overhead over the free path).
void BM_EngineDisparityCold(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 4);
  const TaskId sink = g.sinks().front();
  for (auto _ : state) {
    const AnalysisEngine engine(g);
    benchmark::DoNotOptimize(engine.disparity(sink));
  }
}
BENCHMARK(BM_EngineDisparityCold)->Arg(10)->Arg(20)->Arg(35);

/// Warm cache: repeated queries against one engine (the session pattern
/// the facade exists for).
void BM_EngineDisparityWarm(benchmark::State& state) {
  const AnalysisEngine engine(
      make_graph(static_cast<std::size_t>(state.range(0)), 4));
  const TaskId sink = engine.graph().sinks().front();
  (void)engine.disparity(sink);  // populate
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.disparity(sink));
  }
}
BENCHMARK(BM_EngineDisparityWarm)->Arg(10)->Arg(20)->Arg(35);

/// Batch analysis of every fusing task, serial vs 2 vs default threads.
/// A fresh engine per iteration so every report is actually computed.
void BM_DisparityAll(benchmark::State& state) {
  const TaskGraph g = make_graph(35, 4);
  EngineOptions opt;
  opt.num_threads = static_cast<std::size_t>(state.range(0));
  const std::vector<TaskId> tasks = AnalysisEngine(g).fusing_tasks();
  for (auto _ : state) {
    const AnalysisEngine engine(g, opt);
    benchmark::DoNotOptimize(engine.disparity_all(tasks));
  }
  state.counters["tasks"] = static_cast<double>(tasks.size());
}
BENCHMARK(BM_DisparityAll)
    ->Arg(1)
    ->Arg(2)
    ->Arg(static_cast<long>(ThreadPool::default_concurrency()));

// ---- manual engine-vs-free comparison -> BENCH_engine.json ----------------

double time_ns(const std::function<void()>& fn, int iters) {
  // One untimed warm-up run, then the mean over `iters`.
  fn();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) fn();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                 .count()) /
         iters;
}

/// Fig. 6-style workload: the full per-instance analysis session (P-diff +
/// S-diff of the sink) via free functions vs one engine, plus the batch
/// path.  Writes BENCH_engine.json.
void write_engine_comparison(const std::string& path) {
  const TaskGraph g = make_graph(35, 1);
  const TaskId sink = g.sinks().front();
  DisparityOptions pdiff;
  pdiff.method = DisparityMethod::kIndependent;
  constexpr int kIters = 50;

  const double free_session_ns = time_ns(
      [&] {
        const RtaResult rta = analyze_response_times(g);
        benchmark::DoNotOptimize(
            analyze_time_disparity(g, sink, rta.response_time, pdiff));
        benchmark::DoNotOptimize(
            analyze_time_disparity(g, sink, rta.response_time));
      },
      kIters);
  const double engine_cold_ns = time_ns(
      [&] {
        const AnalysisEngine engine(g);
        benchmark::DoNotOptimize(engine.disparity(sink, pdiff));
        benchmark::DoNotOptimize(engine.disparity(sink));
      },
      kIters);

  const AnalysisEngine warm(g);
  (void)warm.disparity(sink);
  const double free_single_ns = time_ns(
      [&] {
        const RtaResult rta = analyze_response_times(g);
        benchmark::DoNotOptimize(
            analyze_time_disparity(g, sink, rta.response_time));
      },
      kIters);
  const double engine_warm_ns = time_ns(
      [&] { benchmark::DoNotOptimize(warm.disparity(sink)); }, kIters);

  const std::vector<TaskId> tasks = warm.fusing_tasks();
  auto batch_ns = [&](std::size_t threads) {
    EngineOptions opt;
    opt.num_threads = threads;
    return time_ns(
        [&] {
          const AnalysisEngine engine(g, opt);
          benchmark::DoNotOptimize(engine.disparity_all(tasks));
        },
        10);
  };
  const double batch1 = batch_ns(1);
  const double batch2 = batch_ns(2);
  const std::size_t n_default = ThreadPool::default_concurrency();
  const double batchn = batch_ns(n_default);

  bench::write_json_file(path, [&](obs::JsonWriter& w) {
    w.member("bench", "engine_vs_free")
        .member("graph_tasks", static_cast<std::int64_t>(g.num_tasks()))
        .member("free_session_ns", free_session_ns)
        .member("engine_cold_session_ns", engine_cold_ns)
        .member("cold_overhead", engine_cold_ns / free_session_ns)
        .member("free_single_ns", free_single_ns)
        .member("engine_warm_ns", engine_warm_ns)
        .member("warm_speedup", free_single_ns / engine_warm_ns);
    w.key("disparity_all").begin_object();
    w.member("tasks", static_cast<std::int64_t>(tasks.size()))
        .member("threads_1_ns", batch1)
        .member("threads_2_ns", batch2)
        .member("threads_default", static_cast<std::int64_t>(n_default))
        .member("threads_default_ns", batchn)
        .member("speedup_2", batch1 / batch2)
        .member("speedup_default", batch1 / batchn);
    w.end_object();
    // The warm engine's cache counters plus the process-wide registry
    // (RTA runs, hop-bound computations, ... of the whole bench run).
    bench::write_metrics_member(w, "engine_metrics", warm.metrics());
    bench::write_metrics_member(w, "global_metrics",
                                obs::MetricsRegistry::global().snapshot());
  });
  std::cout << "engine-vs-free comparison written to " << path
            << " (warm speedup: " << free_single_ns / engine_warm_ns
            << "x)\n";
}

// ---- kernel-vs-reference comparison -> BENCH_pairwise.json -----------------

bool reports_identical(const DisparityReport& a, const DisparityReport& b) {
  if (a.worst_case != b.worst_case || a.chains != b.chains ||
      a.pairs.size() != b.pairs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    if (a.pairs[i].chain_a != b.pairs[i].chain_a ||
        a.pairs[i].chain_b != b.pairs[i].chain_b ||
        a.pairs[i].bound != b.pairs[i].bound) {
      return false;
    }
  }
  return true;
}

/// Reference analyzer vs the pairwise kernel (serial and parallel) on a
/// 256-chain diamond stack, cross-checked bit-for-bit.  Writes
/// BENCH_pairwise.json; returns false on any kernel-vs-reference
/// divergence (perf_smoke and main() turn that into a failure).
bool write_pairwise_comparison(const std::string& path) {
  constexpr std::size_t kStages = 8;  // 2^8 = 256 chains, 32640 pairs
  const TaskGraph g = diamond_stack_graph(kStages);
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  const std::size_t chains = count_source_chains(g, sink);
  const std::size_t pairs = chains * (chains - 1) / 2;
  const DisparityOptions opt;  // S-diff, last-joint truncation, keep all
  constexpr int kIters = 3;

  DisparityReport ref, ker, par;
  const double reference_ns = time_ns(
      [&] { ref = analyze_time_disparity(g, sink, rta.response_time, opt); },
      kIters);
  const double kernel_ns = time_ns(
      [&] {
        ker = analyze_time_disparity_kernel(g, sink, rta.response_time, opt);
      },
      kIters);
  ThreadPool pool(ThreadPool::default_concurrency());
  const double kernel_parallel_ns = time_ns(
      [&] {
        par = analyze_time_disparity_kernel(g, sink, rta.response_time, opt,
                                            &pool);
      },
      kIters);
  const bool match = reports_identical(ref, ker) && reports_identical(ref, par);

  bench::write_json_file(path, [&](obs::JsonWriter& w) {
    w.member("bench", "pairwise_kernel_vs_reference")
        .member("stages", static_cast<std::int64_t>(kStages))
        .member("chains", static_cast<std::int64_t>(chains))
        .member("pairs", static_cast<std::int64_t>(pairs))
        .member("worst_case_ns",
                static_cast<std::int64_t>(ref.worst_case.count()))
        .member("reference_ns", reference_ns)
        .member("kernel_ns", kernel_ns)
        .member("speedup", reference_ns / kernel_ns)
        .member("kernel_parallel_ns", kernel_parallel_ns)
        .member("threads", static_cast<std::int64_t>(pool.size()))
        .member("parallel_speedup", reference_ns / kernel_parallel_ns)
        .member("match", match);
  });
  std::cout << "pairwise kernel comparison written to " << path << " ("
            << chains << " chains, speedup: " << reference_ns / kernel_ns
            << "x serial, " << reference_ns / kernel_parallel_ns << "x with "
            << pool.size() << " threads, match: "
            << (match ? "true" : "false") << ")\n";
  return match;
}

// ---- DAG DP vs enumeration -> BENCH_dagdp.json -----------------------------

/// DP backend vs the enumerating kernel: worst-pair agreement is checked
/// bit-for-bit on an enumerable 256-chain diamond stack, then the DP's
/// throughput is recorded on a 10⁴-task ladder (2^3333 chains — beyond
/// any enumeration cap, and beyond size_t) serially and with DP-served
/// sinks sharded across the engine pool.  Writes BENCH_dagdp.json;
/// returns false on any DP-vs-kernel divergence (perf_smoke and main()
/// turn that into a failure).
bool write_dagdp_comparison(const std::string& path) {
  const DisparityOptions opt = dagdp_options();

  // Agreement pass on an enumerable instance (same options, both ways).
  const TaskGraph small = diamond_stack_graph(8);
  const RtaResult small_rta = analyze_response_times(small);
  const TaskId small_sink = small.sinks().front();
  const DisparityReport dp_small = analyze_time_disparity_dag_dp(
      small, small_sink, small_rta.response_time, opt);
  const DisparityReport ker_small = analyze_time_disparity_kernel(
      small, small_sink, small_rta.response_time, opt);
  const bool match = dp_small.exact &&
                     dp_small.worst_case == ker_small.worst_case &&
                     dp_small.chain_count == ker_small.chain_count;

  // Throughput pass on the 10⁴-task ladder.
  constexpr std::size_t kLayers = 3333;  // 1 + 3*3333 = 10000 tasks
  const TaskGraph g = dagdp_ladder_graph(kLayers);
  const RtaResult rta = analyze_response_times(g);
  const TaskId sink = g.sinks().front();
  constexpr int kIters = 3;
  DisparityReport huge;
  const double serial_ns = time_ns(
      [&] {
        huge = analyze_time_disparity_dag_dp(g, sink, rta.response_time, opt);
      },
      kIters);
  const double tasks_per_sec =
      static_cast<double>(g.num_tasks()) / (serial_ns * 1e-9);

  // Batch: 8 junction cones via disparity_all, 1 thread vs default.
  std::vector<TaskId> sample;
  for (std::size_t i = 416; i <= kLayers; i += 416) {
    sample.push_back(static_cast<TaskId>(3 * i));
  }
  auto batch_ns = [&](std::size_t threads) {
    EngineOptions eopt;
    eopt.num_threads = threads;
    const AnalysisEngine engine(g, eopt);
    return time_ns(
        [&] {
          const AnalysisEngine fresh(g, eopt);
          benchmark::DoNotOptimize(fresh.disparity_all(sample, opt));
        },
        2);
  };
  const double batch1 = batch_ns(1);
  const std::size_t n_default = ThreadPool::default_concurrency();
  const double batchn = batch_ns(n_default);

  bench::write_json_file(path, [&](obs::JsonWriter& w) {
    w.member("bench", "dagdp_vs_enumeration")
        .member("agreement_chains",
                static_cast<std::int64_t>(ker_small.chain_count))
        .member("match", match)
        .member("graph_tasks", static_cast<std::int64_t>(g.num_tasks()))
        .member("chain_count_saturated", huge.chain_count_saturated)
        .member("worst_case_ns",
                static_cast<std::int64_t>(huge.worst_case.count()))
        .member("exact", huge.exact)
        .member("serial_ns", serial_ns)
        .member("tasks_per_sec", tasks_per_sec)
        .member("batch_sinks", static_cast<std::int64_t>(sample.size()))
        .member("batch_threads_1_ns", batch1)
        .member("threads_default", static_cast<std::int64_t>(n_default))
        .member("batch_threads_default_ns", batchn)
        .member("parallel_speedup", batch1 / batchn);
  });
  std::cout << "dag-dp comparison written to " << path << " ("
            << g.num_tasks() << " tasks, " << tasks_per_sec
            << " tasks/sec serial, batch speedup: " << batch1 / batchn
            << "x with " << n_default << " threads, match: "
            << (match ? "true" : "false") << ")\n";
  return match;
}

// ---- incremental mutation API vs fresh rebuilds -> BENCH_incremental.json --

/// Deterministic 55-task workload for the buffer sweep: two 28-task
/// chains merged at one sink, WATERS parameters, first schedulable seed.
/// Long chains make the fresh-rebuild cost (full RTA + enumeration + all
/// bounds) dwarf what a buffer edit actually dirties (one chain's bounds
/// plus the sink report).
TaskGraph incremental_sweep_graph() {
  for (std::uint64_t seed = 1;; ++seed) {
    Rng rng(seed);
    TaskGraph g = merge_chains_at_sink(28, 28);
    WatersAssignOptions wopt;
    wopt.num_ecus = 4;
    assign_waters_parameters(g, wopt, rng);
    if (analyze_response_times(g).all_schedulable) return g;
  }
}

/// One 64-point buffer sweep through the mutation API: resize the head
/// channel of chain λ₀, re-query the sink disparity, repeat.  Each point
/// pays only the §9 "buffer" row: the resized chain's bounds + the sink
/// report; RTA, hops, the other chain's bounds and the chain sets survive.
void BM_IncrementalBufferSweep(benchmark::State& state) {
  const TaskGraph g = incremental_sweep_graph();
  const TaskId sink = g.sinks().front();
  const auto chains = enumerate_source_chains(g, sink);
  const TaskId from = chains[0][0];
  const TaskId to = chains[0][1];
  AnalysisEngine engine{TaskGraph{g}};
  (void)engine.disparity(sink);  // warm
  for (auto _ : state) {
    for (int n = 1; n <= 64; ++n) {
      engine.set_buffer(from, to, n);
      benchmark::DoNotOptimize(engine.disparity(sink));
    }
    engine.set_buffer(from, to, 1);
  }
  state.counters["points"] = 64;
}
BENCHMARK(BM_IncrementalBufferSweep);

/// The same sweep paying a full engine rebuild per point (the pre-mutation
/// API workflow): graph copy + validate + RTA + enumeration + every bound.
void BM_FreshBufferSweep(benchmark::State& state) {
  const TaskGraph g = incremental_sweep_graph();
  const TaskId sink = g.sinks().front();
  const auto chains = enumerate_source_chains(g, sink);
  const TaskId from = chains[0][0];
  const TaskId to = chains[0][1];
  for (auto _ : state) {
    for (int n = 1; n <= 64; ++n) {
      TaskGraph copy = g;
      copy.set_buffer_size(from, to, n);
      const AnalysisEngine fresh{std::move(copy)};
      benchmark::DoNotOptimize(fresh.disparity(sink));
    }
  }
  state.counters["points"] = 64;
}
BENCHMARK(BM_FreshBufferSweep);

/// 64-point buffer sweep, incremental engine vs fresh-engine rebuilds,
/// cross-checked bit-for-bit per point.  Writes BENCH_incremental.json;
/// returns false on any divergence (perf_smoke and main() fail then).
bool write_incremental_comparison(const std::string& path) {
  constexpr int kPoints = 64;
  const TaskGraph g = incremental_sweep_graph();
  const TaskId sink = g.sinks().front();
  const auto chains = enumerate_source_chains(g, sink);
  const TaskId from = chains[0][0];
  const TaskId to = chains[0][1];

  // Correctness pass first: every sweep point must match a fresh engine
  // on the identically-buffered graph, field for field.
  AnalysisEngine engine{TaskGraph{g}};
  (void)engine.disparity(sink);
  bool match = true;
  for (int n = 1; n <= kPoints && match; ++n) {
    engine.set_buffer(from, to, n);
    TaskGraph copy = g;
    copy.set_buffer_size(from, to, n);
    const AnalysisEngine fresh{std::move(copy)};
    match = reports_identical(engine.disparity(sink), fresh.disparity(sink));
  }
  engine.set_buffer(from, to, 1);
  (void)engine.disparity(sink);

  constexpr int kIters = 5;
  const double incremental_ns = time_ns(
      [&] {
        for (int n = 1; n <= kPoints; ++n) {
          engine.set_buffer(from, to, n);
          benchmark::DoNotOptimize(engine.disparity(sink));
        }
        engine.set_buffer(from, to, 1);
        benchmark::DoNotOptimize(engine.disparity(sink));
      },
      kIters);
  const double fresh_ns = time_ns(
      [&] {
        for (int n = 1; n <= kPoints; ++n) {
          TaskGraph copy = g;
          copy.set_buffer_size(from, to, n);
          const AnalysisEngine fresh{std::move(copy)};
          benchmark::DoNotOptimize(fresh.disparity(sink));
        }
      },
      kIters);
  const double speedup = fresh_ns / incremental_ns;

  const obs::MetricsSnapshot m = engine.metrics();
  std::int64_t retention_ppm = 0;
  for (const auto& [name, value] : m.gauges) {
    if (name == "engine.mutate.retention_ppm") retention_ppm = value;
  }
  bench::write_json_file(path, [&](obs::JsonWriter& w) {
    w.member("bench", "incremental_vs_fresh")
        .member("graph_tasks", static_cast<std::int64_t>(g.num_tasks()))
        .member("sweep_points", static_cast<std::int64_t>(kPoints))
        .member("fresh_ns", fresh_ns)
        .member("incremental_ns", incremental_ns)
        .member("speedup", speedup)
        .member("commits",
                static_cast<std::int64_t>(m.counter("engine.mutate.commits")))
        .member("retention_ppm", retention_ppm)
        .member("match", match);
    bench::write_metrics_member(w, "engine_metrics", m);
  });
  std::cout << "incremental-vs-fresh comparison written to " << path << " ("
            << kPoints << " sweep points, speedup: " << speedup
            << "x, retention: " << static_cast<double>(retention_ppm) / 10'000.0
            << "%, match: " << (match ? "true" : "false") << ")\n";
  return match;
}

// ---- disabled-tracing overhead budget --------------------------------------

/// Assert the overhead budget of compiled-in-but-disabled tracing: spans
/// cost one atomic load + branch, so (spans per analysis) x (disabled
/// span cost) must stay under 2% of the analysis runtime.  Span-cost
/// accounting is used instead of differencing two timed runs because the
/// difference of two ~equal ms-scale timings is noise on a busy 1-core
/// host, while both factors here are individually stable.
bool check_disabled_tracing_overhead() {
  CETA_EXPECTS(!obs::Tracer::enabled(),
               "overhead check requires tracing disabled");
  const TaskGraph g = make_graph(35, 1);
  const TaskId sink = g.sinks().front();
  DisparityOptions pdiff;
  pdiff.method = DisparityMethod::kIndependent;
  const auto session = [&] {
    const AnalysisEngine engine(g);
    benchmark::DoNotOptimize(engine.disparity(sink, pdiff));
    benchmark::DoNotOptimize(engine.disparity(sink));
  };

  // Cost of one disabled span, amortized over a tight loop (with the two
  // annotation calls the instrumented hot paths make).
  constexpr int kSpanIters = 2'000'000;
  const double span_ns = time_ns(
                             [&] {
                               for (int i = 0; i < kSpanIters; ++i) {
                                 obs::Span s("bench", "probe");
                                 s.arg("k", std::int64_t{1});
                                 s.arg("c", "hit");
                                 benchmark::DoNotOptimize(s);
                               }
                             },
                             3) /
                         kSpanIters;

  // Spans one analysis session emits: trace a single run in memory.
  obs::Tracer::global().start();
  session();
  const std::size_t spans = obs::Tracer::global().pending_events();
  (void)obs::Tracer::global().stop_to_string();  // drain + disable

  const double session_ns = time_ns(session, 20);
  const double overhead = (static_cast<double>(spans) * span_ns) / session_ns;
  std::cout << "disabled-tracing overhead: " << spans << " spans x "
            << span_ns << " ns / " << session_ns << " ns = "
            << overhead * 100.0 << "% (budget 2%)\n";
  return overhead < 0.02;
}

}  // namespace

int main(int argc, char** argv) {
  ceta::bench::maybe_start_profile_trace(argc > 0 ? argv[0] : nullptr);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_engine_comparison("BENCH_engine.json");
  if (!write_pairwise_comparison("BENCH_pairwise.json")) {
    std::cerr << "FAIL: pairwise kernel diverges from the reference\n";
    return 1;
  }
  if (!write_incremental_comparison("BENCH_incremental.json")) {
    std::cerr << "FAIL: incremental engine diverges from fresh rebuilds\n";
    return 1;
  }
  if (!write_dagdp_comparison("BENCH_dagdp.json")) {
    std::cerr << "FAIL: DAG-DP backend diverges from the enumerating kernel\n";
    return 1;
  }
  if (!ceta::obs::Tracer::enabled() && !check_disabled_tracing_overhead()) {
    std::cerr << "FAIL: disabled tracing exceeds the 2% overhead budget\n";
    return 1;
  }
  return 0;
}
