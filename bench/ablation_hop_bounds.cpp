// Ablation: tightness of the non-preemptive hop bound (Lemma 4) against
// the scheduling-agnostic per-hop bound θ = T + R in the style of Dürr et
// al. [5].  Sweeps chain length on WATERS two-chain instances and reports
// the mean WCBT under both hop-bound methods plus the resulting S-diff
// disparity bounds.

#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "engine/analysis_engine.hpp"
#include "experiments/table.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "waters/generator.hpp"

int main(int argc, char** argv) {
  using namespace ceta;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  const std::size_t instances = cli.fast ? 5 : 20;
  Rng rng(cli.seed ? cli.seed : 20230403);

  std::cout << "Ablation: Lemma 4 (non-preemptive) vs scheduling-agnostic "
               "hop bounds\nWCBT and S-diff means over "
            << instances << " WATERS two-chain instances per point\n\n";

  ConsoleTable table({"chain len", "WCBT L4[ms]", "WCBT agn[ms]",
                      "S-diff L4[ms]", "S-diff agn[ms]", "gain"});
  for (const std::size_t len : {5u, 10u, 15u, 20u, 25u, 30u}) {
    OnlineStats w_np, w_ag, d_np, d_ag;
    for (std::size_t i = 0; i < instances; ++i) {
      TaskGraph g = merge_chains_at_sink(len, len);
      WatersAssignOptions wopt;
      wopt.num_ecus = 4;
      assign_waters_parameters(g, wopt, rng);
      // Both hop-bound methods share the engine's RTA and chain caches.
      const AnalysisEngine engine(std::move(g));
      if (!engine.schedulable()) {
        --i;
        continue;
      }
      const TaskId sink = engine.graph().sinks().front();
      for (const Path& c : engine.chains(sink)) {
        w_np.add(
            engine.chain_bounds(c, HopBoundMethod::kNonPreemptive).wcbt.as_ms());
        w_ag.add(engine.chain_bounds(c, HopBoundMethod::kSchedulingAgnostic)
                     .wcbt.as_ms());
      }
      DisparityOptions dopt;
      dopt.method = DisparityMethod::kForkJoin;
      dopt.hop_method = HopBoundMethod::kNonPreemptive;
      d_np.add(engine.disparity(sink, dopt).worst_case.as_ms());
      dopt.hop_method = HopBoundMethod::kSchedulingAgnostic;
      d_ag.add(engine.disparity(sink, dopt).worst_case.as_ms());
    }
    const double gain = (d_ag.mean() - d_np.mean()) / d_ag.mean();
    table.add_row({std::to_string(len), fmt_double(w_np.mean()),
                   fmt_double(w_ag.mean()), fmt_double(d_np.mean()),
                   fmt_double(d_ag.mean()), fmt_percent(gain)});
  }
  table.print(std::cout);
  std::cout << "\n'gain' = relative reduction of the S-diff bound from "
               "using Lemma 4 instead of the scheduling-agnostic hops\n\n";

  // High-utilization single-ECU variant: WATERS response times are
  // microseconds against millisecond periods, hiding Lemma 4's O(R)
  // per-hop advantage.  Here all tasks share one ECU at ~50% utilization
  // (uniform 20ms periods, index priorities), making R milliseconds.
  std::cout << "High-utilization single-ECU variant (U ~ 50%, T = 20ms):\n\n";
  ConsoleTable table2({"chain len", "WCBT L4[ms]", "WCBT agn[ms]", "gain"});
  for (const std::size_t len : {5u, 10u, 15u, 20u, 25u, 30u}) {
    OnlineStats w_np, w_ag;
    for (std::size_t i = 0; i < instances; ++i) {
      TaskGraph g = merge_chains_at_sink(len, len);
      const double u_per_task =
          0.5 / static_cast<double>(2 * len);  // total ~50%
      int prio = 0;
      for (TaskId id = 0; id < g.num_tasks(); ++id) {
        Task& t = g.task(id);
        t.period = Duration::ms(20);
        if (g.is_source(id)) continue;
        const double w_ms =
            20.0 * u_per_task * rng.uniform_real(0.7, 1.3);
        t.wcet = Duration::ns(static_cast<std::int64_t>(w_ms * 1e6));
        t.bcet = t.wcet / 2;
        t.ecu = 0;
        t.priority = prio++;
      }
      const AnalysisEngine engine(std::move(g));
      if (!engine.schedulable()) {
        --i;
        continue;
      }
      for (const Path& c :
           engine.chains(engine.graph().sinks().front())) {
        w_np.add(
            engine.chain_bounds(c, HopBoundMethod::kNonPreemptive).wcbt.as_ms());
        w_ag.add(engine.chain_bounds(c, HopBoundMethod::kSchedulingAgnostic)
                     .wcbt.as_ms());
      }
    }
    const double gain = (w_ag.mean() - w_np.mean()) / w_ag.mean();
    table2.add_row({std::to_string(len), fmt_double(w_np.mean()),
                    fmt_double(w_ag.mean()), fmt_percent(gain)});
  }
  table2.print(std::cout);

  if (!cli.csv_path.empty()) {
    write_file(cli.csv_path, table.to_csv() + table2.to_csv());
  }
  return 0;
}
