// Fig. 6(c) — effect of the buffer-size design (Algorithm 1 / Theorem 3)
// on two chains merged at a sink: S-diff vs S-diff-B (optimized bound)
// and Sim vs Sim-B (measured, with and without the designed buffer).
//
// Expected shape (paper): S-diff-B well below S-diff, and Sim-B below Sim
// — the design reduces the *actual* disparity, not just the bound.

#include <iostream>

#include "bench_util.hpp"
#include "experiments/fig6cd.hpp"
#include "experiments/table.hpp"

int main(int argc, char** argv) {
  using namespace ceta;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);

  Fig6cdConfig cfg;
  cfg.instances_per_point = 5;
  cfg.offsets_per_instance = 10;
  cfg.sim_measure_window = Duration::s(10);
  if (cli.fast) {
    cfg.chain_lengths = {5, 15};
    cfg.instances_per_point = 2;
    cfg.offsets_per_instance = 2;
    cfg.sim_measure_window = Duration::ms(500);
  } else if (cli.paper) {
    cfg.instances_per_point = 10;
    cfg.offsets_per_instance = 10;
    cfg.sim_measure_window = Duration::s(60);
  }
  if (cli.seed) cfg.seed = cli.seed;

  std::cout << "Fig 6(c): buffer optimization, absolute disparity (mean over "
            << cfg.instances_per_point << " instances)\n\n";

  const auto points = run_fig6cd(
      cfg, [](const std::string& msg) { std::cerr << "  [" << msg << "]\n"; });

  ConsoleTable table({"chain len", "S-diff[ms]", "S-diff-B[ms]", "Sim[ms]",
                      "Sim-B[ms]", "avg buf"});
  bool shape_ok = true;
  for (const Fig6cdPoint& p : points) {
    table.add_row({std::to_string(p.chain_length), fmt_double(p.sdiff_ms),
                   fmt_double(p.sdiff_b_ms), fmt_double(p.sim_ms),
                   fmt_double(p.sim_b_ms), fmt_double(p.buffer_size, 1)});
    shape_ok = shape_ok && p.sdiff_b_ms <= p.sdiff_ms &&
               p.sim_ms <= p.sdiff_ms && p.sim_b_ms <= p.sdiff_b_ms;
  }
  table.print(std::cout);
  std::cout << "\nshape check (S-diff-B <= S-diff, Sim <= S-diff, "
               "Sim-B <= S-diff-B): "
            << (shape_ok ? "OK" : "VIOLATED") << '\n';
  if (!cli.csv_path.empty()) {
    write_file(cli.csv_path, table.to_csv());
    std::cout << "csv written to " << cli.csv_path << '\n';
  }
  return shape_ok ? 0 : 1;
}
