// Ablation: buffers (§IV) vs offset synthesis on deterministic LET
// fusion systems, with exact disparities (no bound pessimism — the LET
// closure makes the analysis exact, disparity/exact.hpp).
//
// The comparison hinges on the period lattice:
//  * With *harmonic* periods (each divides the next), relative phases
//    lock, and planning release offsets aligns the traced samples as far
//    as the coarsest period on any chain allows, with no buffer memory.
//  * With WATERS' mixed periods (2 vs 5 ms etc.), relative phases sweep
//    through all residues over the hyperperiod, so no static offset
//    assignment can prevent the worst alignment: offsets then do roughly
//    what buffers do (shift windows).
// Either way both techniques plateau at the same structural floor — the
// staleness quantization of the coarsest-period hop — which only a faster
// pipeline can lower (see disparity/sensitivity.hpp).

#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "disparity/exact.hpp"
#include "disparity/multi_buffer.hpp"
#include "disparity/offset_opt.hpp"
#include "engine/analysis_engine.hpp"
#include "engine/incremental.hpp"
#include "experiments/table.hpp"
#include "graph/generator.hpp"
#include "sched/priority.hpp"
#include "waters/generator.hpp"

namespace {

using namespace ceta;

/// Re-draw the periods of every task from a harmonic set (keeps WATERS
/// execution times).
void make_harmonic(TaskGraph& g, Rng& rng) {
  const Duration menu[] = {Duration::ms(10), Duration::ms(20),
                           Duration::ms(100)};
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    Task& t = g.task(id);
    t.period = menu[rng.uniform_int(0, 2)];
    if (t.wcet >= t.period) t.wcet = t.bcet = t.period / 10;
    t.offset = Duration::zero();
  }
}

void run_table(const char* label, bool harmonic, std::size_t instances,
               Rng& rng, std::string& csv) {
  std::cout << label << "\n\n";
  ConsoleTable table(
      {"chain len", "baseline[ms]", "buffers[ms]", "offsets[ms]"});
  for (const std::size_t len : {3u, 4u, 5u}) {
    OnlineStats base, buf, off;
    for (std::size_t i = 0; i < instances; ++i) {
      TaskGraph g = merge_chains_at_sink(len, len);
      WatersAssignOptions wopt;
      wopt.num_ecus = 3;
      assign_waters_parameters(g, wopt, rng);
      if (harmonic) {
        Rng hr = rng.split();
        make_harmonic(g, hr);
      }
      g.set_comm_semantics(CommSemantics::kLet);
      Rng offset_rng = rng.split();
      randomize_offsets(g, offset_rng);
      AnalysisEngine engine(g);
      if (!engine.schedulable()) {
        --i;
        continue;
      }
      const TaskId sink = g.sinks().front();

      const Duration baseline =
          exact_let_disparity(g, sink).worst_disparity;
      base.add(baseline.as_ms());

      const MultiBufferDesign d = engine.optimize_buffers(sink);
      TaskGraph buffered = g;
      apply_multi_buffer_design(buffered, d);
      buf.add(exact_let_disparity(buffered, sink).worst_disparity.as_ms());

      off.add(plan_source_offsets(engine, sink).optimized.as_ms());
    }
    table.add_row({std::to_string(len), fmt_double(base.mean()),
                   fmt_double(buf.mean()), fmt_double(off.mean())});
  }
  table.print(std::cout);
  std::cout << '\n';
  csv += std::string("# ") + label + "\n" + table.to_csv();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ceta;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  const std::size_t instances = cli.fast ? 3 : 10;
  Rng rng(cli.seed ? cli.seed : 20230406);

  std::cout << "Ablation: buffers vs offset synthesis on LET fusion systems "
               "(exact disparities, means over "
            << instances << " instances)\n\n";
  std::string csv;
  run_table("WATERS mixed periods:", false, instances, rng, csv);
  run_table("Harmonic periods {10, 20, 100}ms:", true, instances, rng, csv);

  std::cout << "Both techniques converge to the same structural floor (the "
               "coarsest-period staleness quantization); offsets need phase "
               "control but no memory, buffers the reverse.\n";
  if (!cli.csv_path.empty()) {
    write_file(cli.csv_path, csv);
  }
  return 0;
}
