// Ablation: implicit (AUTOSAR) vs LET (Logical Execution Time)
// communication.  LET publishes at deadlines, decoupling data timing from
// scheduling and execution — the disparity becomes deterministic for fixed
// offsets — at the cost of roughly one extra period of backward time per
// hop (θ = 2T instead of T + R).  Sweeps chain length on WATERS two-chain
// fusion instances.

#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "engine/analysis_engine.hpp"
#include "experiments/table.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "sched/priority.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

namespace {

using namespace ceta;

Duration measure(TaskGraph g, TaskId sink, std::uint64_t seed) {
  SimOptions opt;
  opt.warmup = Duration::s(2);
  opt.duration = Duration::s(6);
  opt.seed = seed;
  return Simulator(g, opt).run().max_disparity[sink];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ceta;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  const std::size_t instances = cli.fast ? 3 : 10;
  Rng rng(cli.seed ? cli.seed : 20230404);

  std::cout << "Ablation: implicit vs LET communication (two-chain WATERS "
               "fusion, means over "
            << instances << " instances)\n\n";

  ConsoleTable table({"chain len", "WCBT impl[ms]", "WCBT LET[ms]",
                      "S-diff impl[ms]", "S-diff LET[ms]", "Sim impl[ms]",
                      "Sim LET[ms]", "LET jitter[ms]"});
  for (const std::size_t len : {5u, 10u, 15u, 20u}) {
    OnlineStats w_impl, w_let, d_impl, d_let, s_impl, s_let, jitter;
    for (std::size_t i = 0; i < instances; ++i) {
      TaskGraph g = merge_chains_at_sink(len, len);
      WatersAssignOptions wopt;
      wopt.num_ecus = 4;
      assign_waters_parameters(g, wopt, rng);
      // The analytical bounds ignore release offsets, so one engine built
      // pre-randomization serves the schedulability gate and all bounds.
      const AnalysisEngine engine(g);
      if (!engine.schedulable()) {
        --i;
        continue;
      }
      Rng offset_rng = rng.split();
      randomize_offsets(g, offset_rng);
      const TaskId sink = g.sinks().front();
      const auto& chains = engine.chains(sink);

      TaskGraph let_graph = g;
      let_graph.set_comm_semantics(CommSemantics::kLet);
      // LET timing is scheduler-independent; share the implicit-mode WCRTs
      // via the engine's external response-time mode.
      const AnalysisEngine let_engine(let_graph, engine.response_times());

      for (const Path& c : chains) {
        w_impl.add(engine.chain_bounds(c).wcbt.as_ms());
        w_let.add(let_engine.chain_bounds(c).wcbt.as_ms());
      }
      d_impl.add(engine.disparity(sink).worst_case.as_ms());
      d_let.add(let_engine.disparity(sink).worst_case.as_ms());
      s_impl.add(measure(g, sink, rng.split().seed()).as_ms());
      // LET determinism: for fixed offsets, the measured disparity must
      // not move across execution-time randomizations.
      const double let_a = measure(let_graph, sink, 1).as_ms();
      const double let_b = measure(let_graph, sink, 2).as_ms();
      s_let.add(let_a);
      jitter.add(std::abs(let_a - let_b));
    }
    table.add_row({std::to_string(len), fmt_double(w_impl.mean()),
                   fmt_double(w_let.mean()), fmt_double(d_impl.mean()),
                   fmt_double(d_let.mean()), fmt_double(s_impl.mean()),
                   fmt_double(s_let.mean()), fmt_double(jitter.mean(), 4)});
  }
  table.print(std::cout);
  std::cout << "\n'LET jitter' = |measured disparity difference| between "
               "two execution-time randomizations under LET (expected 0 — "
               "data timing is decoupled from execution)\n";
  if (!cli.csv_path.empty()) {
    write_file(cli.csv_path, table.to_csv());
  }
  return 0;
}
