// Sim-vs-bound tightness at Monte-Carlo scale (ROADMAP item 2).
//
// Pushes run_monte_carlo to 10^5 replications (10^6 with --paper) on
// three WATERS instances — a G(n,m) DAG, a funnel, and the merged
// two-chain topology — and compares the measured disparity distribution
// of each sink against the analyzer's Theorem 2 bound: per instance, the
// worst empirical sample, the tightness ratio worst/bound (in [0, 1]
// whenever the bound is sound), the number of bound violations (must be
// zero) and the fig6-style log2 histogram of measured disparities.
//
// Every sample is a pure function of its replication seed, so the
// aggregate — histograms included — is bit-identical for every thread
// count; the bench runs the fleet on the default pool and exits nonzero
// if any sample exceeded its bound.
//
// Emits BENCH_tightness.json (schema-checked by tests/check_bench_json.cpp
// mode "tightness").  --fast drops to 2000 replications for smoke runs.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "disparity/analyzer.hpp"
#include "engine/analysis_engine.hpp"
#include "graph/generator.hpp"
#include "sim/montecarlo.hpp"
#include "waters/generator.hpp"

namespace {

using ceta::AnalysisEngine;
using ceta::Duration;
using ceta::Rng;
using ceta::TaskGraph;
using ceta::TaskId;

struct Instance {
  std::string name;
  TaskGraph g;
  TaskId sink = 0;
  std::uint64_t waters_seed = 0;
};

TaskGraph make_topology(const std::string& name, Rng& rng) {
  if (name == "gnm") {
    ceta::GnmDagOptions o;
    o.num_tasks = 12;
    o.num_edges = 18;
    return ceta::gnm_random_dag(o, rng);
  }
  if (name == "funnel") {
    ceta::FunnelDagOptions o;
    o.num_tasks = 12;
    return ceta::funnel_random_dag(o, rng);
  }
  return ceta::merge_chains_at_sink(7, 6);
}

/// First schedulable WATERS parameterization of `name` whose sink fuses
/// >= 2 source chains.
Instance make_instance(const std::string& name, std::uint64_t seed0) {
  for (std::uint64_t s = seed0;; ++s) {
    Rng rng(s);
    TaskGraph g = make_topology(name, rng);
    Rng prng = rng.split();
    ceta::assign_waters_parameters(g, ceta::WatersAssignOptions{}, prng);
    const AnalysisEngine probe(g);
    if (!probe.schedulable()) continue;
    const TaskId sink = g.sinks().front();
    if (probe.chains(sink).size() < 2) continue;
    return {name, std::move(g), sink, s};
  }
}

}  // namespace

int main(int argc, char** argv) {
  const ceta::bench::CliOptions cli = ceta::bench::parse_cli(argc, argv);
  const std::uint64_t seed = cli.seed != 0 ? cli.seed : 1;
  const std::uint64_t kReplications =
      cli.paper ? 1'000'000 : (cli.fast ? 2'000 : 100'000);

  bool all_ok = true;
  struct Row {
    Instance inst;
    Duration bound;
    ceta::sim::MonteCarloResult mc;
  };
  std::vector<Row> rows;

  for (const std::string& name : {std::string("gnm"), std::string("funnel"),
                                  std::string("merged")}) {
    Instance inst = make_instance(name, seed);
    const AnalysisEngine engine(inst.g);

    ceta::DisparityOptions dopt;
    dopt.keep_pairs = ceta::KeepPairs::kWorstOnly;
    const Duration bound = engine.disparity(inst.sink, dopt).worst_case;

    ceta::sim::MonteCarloOptions mopt;
    mopt.first_seed = seed;
    mopt.replications = kReplications;
    mopt.observed = {inst.sink};
    mopt.bounds = {bound};
    mopt.sim.duration = Duration::ms(60);
    mopt.sim.warmup = Duration::ms(20);
    const ceta::sim::MonteCarloResult mc =
        ceta::sim::run_monte_carlo(inst.g, mopt);

    const ceta::sim::TaskMonteCarlo& t = mc.tasks.front();
    std::cout << "perf_tightness: " << name << " (" << inst.g.num_tasks()
              << " tasks, waters seed " << inst.waters_seed << "): "
              << mc.replications << " replications, " << mc.sims_per_sec
              << " sims/sec, bound " << bound.count() << " ns, worst sample "
              << t.worst_sample.count() << " ns, tightness " << t.tightness
              << ", violations " << t.bound_violations << "\n";
    if (!mc.all_within_bounds) {
      std::cerr << "perf_tightness: " << name << ": " << t.bound_violations
                << " sample(s) exceeded the analyzer bound\n";
      all_ok = false;
    }
    rows.push_back({std::move(inst), bound, std::move(mc)});
  }

  ceta::bench::write_json_file(
      "BENCH_tightness.json", [&](ceta::obs::JsonWriter& w) {
        w.member("bench", "tightness");
        w.member("replications", kReplications);
        w.member("all_within_bounds", all_ok);
        w.key("instances");
        w.begin_array();
        for (const Row& r : rows) {
          const ceta::sim::TaskMonteCarlo& t = r.mc.tasks.front();
          w.begin_object();
          w.member("name", r.inst.name);
          w.member("tasks", static_cast<std::uint64_t>(r.inst.g.num_tasks()));
          w.member("waters_seed", r.inst.waters_seed);
          w.member("sink", static_cast<std::uint64_t>(r.inst.sink));
          w.member("bound_ns", r.bound.count());
          w.member("worst_sample_ns", t.worst_sample.count());
          w.member("mean_sample_ns", t.disparity.mean().count());
          w.member("tightness", t.tightness);
          w.member("bound_violations", t.bound_violations);
          w.member("samples", t.disparity.count);
          w.member("sims_per_sec", r.mc.sims_per_sec);
          w.member("wall_seconds", r.mc.wall_seconds);
          // fig6-style measured-vs-bound histogram: log2 buckets of the
          // measured disparity samples, plus the bucket the bound lands
          // in (the gap between mass and bound bucket *is* the figure).
          w.member("bound_bucket",
                   static_cast<std::uint64_t>(
                       ceta::sim::EmpiricalHistogram::bucket_of(r.bound)));
          w.key("histogram");
          w.begin_array();
          for (std::size_t b = 0; b < t.disparity.buckets.size(); ++b) {
            if (t.disparity.buckets[b] == 0) continue;
            w.begin_object();
            w.member("bucket", static_cast<std::uint64_t>(b));
            w.member("count", t.disparity.buckets[b]);
            w.end_object();
          }
          w.end_array();
          w.end_object();
        }
        w.end_array();
      });

  return all_ok ? 0 : 1;
}
