// Ablation (paper Fig. 4): raising the sampling frequency of a middle
// task does NOT reduce the worst-case time disparity — the buffer design
// does.  Sweeps the middle task's period downward in the two-chain fusion
// topology and reports the S-diff bound, the Theorem 3 optimized bound,
// and measured disparities.

#include <iostream>

#include "bench_util.hpp"
#include "disparity/buffer_opt.hpp"
#include "engine/analysis_engine.hpp"
#include "experiments/table.hpp"
#include "graph/paths.hpp"
#include "graph/task_graph.hpp"
#include "sim/engine.hpp"

namespace {

ceta::TaskGraph build(ceta::Duration p_period) {
  using namespace ceta;
  TaskGraph g;
  Task s1;
  s1.name = "S1";
  s1.period = Duration::ms(10);
  const TaskId s1id = g.add_task(s1);
  Task s2;
  s2.name = "S2";
  s2.period = Duration::ms(100);
  const TaskId s2id = g.add_task(s2);
  auto mk = [](const char* name, Duration period, EcuId ecu) {
    Task t;
    t.name = name;
    t.wcet = t.bcet = Duration::ms(1);
    t.period = period;
    t.ecu = ecu;
    t.priority = 0;
    return t;
  };
  const TaskId p = g.add_task(mk("P", p_period, 0));
  const TaskId q = g.add_task(mk("Q", Duration::ms(100), 1));
  const TaskId f = g.add_task(mk("F", Duration::ms(30), 2));
  g.add_edge(s1id, p);
  g.add_edge(s2id, q);
  g.add_edge(p, f);
  g.add_edge(q, f);
  g.validate();
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ceta;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);
  const Duration sim_time = cli.fast ? Duration::s(5) : Duration::s(30);

  std::cout
      << "Ablation (Fig. 4): middle-task frequency vs buffer design\n"
         "Topology: S1(10ms)->P(T varies)->F(30ms) joined by "
         "S2(100ms)->Q(100ms)->F\n\n";

  ConsoleTable table({"T(P)", "S-diff[ms]", "S-diff-B[ms]", "buf",
                      "Sim[ms]", "Sim-B[ms]"});
  bool frequency_helped = false;
  double first_bound = 0.0;
  for (const Duration period :
       {Duration::ms(30), Duration::ms(15), Duration::ms(10),
        Duration::ms(5)}) {
    const AnalysisEngine engine(build(period));
    const TaskGraph& g = engine.graph();
    const auto& chains = engine.chains(4);
    DisparityOptions dopt;
    dopt.method = DisparityMethod::kForkJoin;
    const Duration sdiff = engine.disparity(4, dopt).worst_case;
    const BufferDesign d = engine.optimize_buffer_pair(chains[0], chains[1]);

    SimOptions sopt;
    sopt.duration = sim_time;
    sopt.warmup = sim_time / 5;
    const SimResult base = Simulator(g, sopt).run();
    TaskGraph buffered = g;
    apply_buffer_design(buffered, d);
    const SimResult opt = Simulator(buffered, sopt).run();

    table.add_row({to_string(period), fmt_double(sdiff.as_ms()),
                   fmt_double(d.optimized_bound.as_ms()),
                   std::to_string(d.buffer_size),
                   fmt_double(base.max_disparity[4].as_ms()),
                   fmt_double(opt.max_disparity[4].as_ms())});
    if (first_bound == 0.0) {
      first_bound = sdiff.as_ms();
    } else if (sdiff.as_ms() < 0.5 * first_bound) {
      frequency_helped = true;  // a 2x improvement would contradict Fig. 4
    }
  }
  table.print(std::cout);
  std::cout << "\nraising P's frequency cut the worst-case bound: "
            << (frequency_helped ? "YES (unexpected)" : "no (as in Fig. 4)")
            << '\n';
  if (!cli.csv_path.empty()) {
    write_file(cli.csv_path, table.to_csv());
  }
  return frequency_helped ? 1 : 0;
}
