// Per-ECU scheduling-policy seam: RTA throughput and differential safety.
//
// The strategy seam (DESIGN.md §14) routes every ECU of a TaskGraph to one
// of three dispatching disciplines — non-preemptive FP (the paper's model),
// preemptive FP (busy-window RTA) and EDF (processor-demand RTA).  This
// driver measures what the seam costs and re-checks what it promises on
// the 64-task merged two-chain WATERS reference instance:
//
//   * analyze_response_times throughput with every ECU flipped to each
//     discipline (runs/sec per policy; EDF's candidate sweep is the
//     expensive one, the bench records how expensive);
//   * the policy-routed S-diff disparity bound per discipline (Lemma 4's
//     same-ECU refinements degrade under preemption/EDF, so the bounds
//     may only widen relative to non-preemptive — gated);
//   * a mixed-policy differential sweep: seeded WATERS instances with
//     ECUs cycled through the three disciplines, each simulated and
//     checked task-by-task against the policy-routed WCRTs — any
//     simulated response time above its bound fails the bench.
//
// Emits BENCH_policy.json (schema-checked by tests/check_bench_json.cpp
// mode "policy").  --fast shrinks iteration counts for smoke runs.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "engine/analysis_engine.hpp"
#include "graph/generator.hpp"
#include "graph/paths.hpp"
#include "sched/npfp_rta.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

namespace {

using ceta::Duration;
using ceta::Rng;
using ceta::SchedPolicy;
using ceta::TaskGraph;
using ceta::TaskId;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

TaskGraph with_policy(const TaskGraph& g, SchedPolicy policy) {
  TaskGraph out = g;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    if (g.task(id).ecu != ceta::kNoEcu) out.set_policy(g.task(id).ecu, policy);
  }
  return out;
}

/// ECUs cycled through the three disciplines: the mixed-policy subject of
/// the differential sweep.
TaskGraph with_mixed_policies(const TaskGraph& g) {
  TaskGraph out = g;
  for (TaskId id = 0; id < g.num_tasks(); ++id) {
    const ceta::EcuId ecu = g.task(id).ecu;
    if (ecu == ceta::kNoEcu) continue;
    switch (ecu % 3) {
      case 0: out.set_policy(ecu, SchedPolicy::kNonPreemptive); break;
      case 1: out.set_policy(ecu, SchedPolicy::kPreemptive); break;
      default: out.set_policy(ecu, SchedPolicy::kEdf); break;
    }
  }
  return out;
}

/// analyze_response_times runs/sec on `g` (whose graph policies select the
/// discipline under test).
double rta_runs_per_sec(const TaskGraph& g, std::size_t iterations) {
  const auto t0 = std::chrono::steady_clock::now();
  Duration sink = Duration::zero();  // defeat dead-code elimination
  for (std::size_t i = 0; i < iterations; ++i) {
    const ceta::RtaResult r = ceta::analyze_response_times(g);
    sink += r.response_time.back();
  }
  const double wall = seconds_since(t0);
  if (sink == Duration::max()) std::cerr << "";  // keep `sink` observable
  return static_cast<double>(iterations) / (wall > 0 ? wall : 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  const ceta::bench::CliOptions cli = ceta::bench::parse_cli(argc, argv);
  const std::uint64_t seed = cli.seed != 0 ? cli.seed : 42;
  const std::size_t kRtaIters = cli.fast ? 200 : 2000;
  const std::size_t kSweepInstances = cli.fast ? 4 : 12;

  // The 64-task reference instance, first seed schedulable under all three
  // uniform disciplines (so every throughput column runs its fixpoints to
  // completion instead of bailing at the first unschedulable task).
  std::uint64_t waters_seed = 1;
  TaskGraph g;
  TaskGraph g_p, g_edf;
  for (;; ++waters_seed) {
    g = ceta::merge_chains_at_sink(33, 32);
    Rng rng(waters_seed);
    ceta::assign_waters_parameters(g, ceta::WatersAssignOptions{}, rng);
    g_p = with_policy(g, SchedPolicy::kPreemptive);
    g_edf = with_policy(g, SchedPolicy::kEdf);
    if (ceta::analyze_response_times(g).all_schedulable &&
        ceta::analyze_response_times(g_p).all_schedulable &&
        ceta::analyze_response_times(g_edf).all_schedulable) {
      break;
    }
  }
  const TaskId sink = g.sinks().front();

  // --- RTA throughput per discipline -------------------------------------
  const auto t_total = std::chrono::steady_clock::now();
  const double np_per_sec = rta_runs_per_sec(g, kRtaIters);
  const double p_per_sec = rta_runs_per_sec(g_p, kRtaIters);
  const double edf_per_sec = rta_runs_per_sec(g_edf, kRtaIters);

  // --- policy-routed disparity bounds ------------------------------------
  const ceta::AnalysisEngine e_np(g);
  const ceta::AnalysisEngine e_p(g_p);
  const ceta::AnalysisEngine e_edf(g_edf);
  const Duration d_np = e_np.disparity(sink).worst_case;
  const Duration d_p = e_p.disparity(sink).worst_case;
  const Duration d_edf = e_edf.disparity(sink).worst_case;

  // --- mixed-policy differential sweep -----------------------------------
  // Seeded WATERS instances, ECUs cycled through the disciplines, each
  // simulated and checked task-by-task against the policy-routed WCRTs.
  std::size_t swept = 0;
  std::size_t violations = 0;
  Rng sweep_rng(seed);
  for (std::size_t i = 0; i < kSweepInstances; ++i) {
    TaskGraph inst = ceta::merge_chains_at_sink(9, 8);
    ceta::WatersAssignOptions wopt;
    wopt.num_ecus = 3;
    ceta::assign_waters_parameters(inst, wopt, sweep_rng);
    const TaskGraph mixed = with_mixed_policies(inst);
    const ceta::RtaResult rta = ceta::analyze_response_times(mixed);
    if (!rta.all_schedulable) continue;
    ceta::SimOptions sopt;
    sopt.duration = Duration::s(2);
    sopt.warmup = Duration::ms(500);
    sopt.seed = sweep_rng.split().seed();
    const ceta::SimResult res = ceta::Simulator(mixed, sopt).run();
    for (TaskId id = 0; id < mixed.num_tasks(); ++id) {
      if (res.max_response_time[id] > rta.response_time[id]) {
        ++violations;
        std::cerr << "perf_policy: task '" << mixed.task(id).name
                  << "' simulated R "
                  << res.max_response_time[id].count() << " ns > WCRT "
                  << rta.response_time[id].count() << " ns (instance " << i
                  << ")\n";
      }
    }
    ++swept;
  }
  const bool match = violations == 0 && swept > 0;
  const double wall = seconds_since(t_total);

  std::cout << "perf_policy: " << g.num_tasks() << " tasks, waters seed "
            << waters_seed << "\n"
            << "  RTA runs/sec: nonpreemptive " << np_per_sec
            << ", preemptive " << p_per_sec << ", edf " << edf_per_sec << "\n"
            << "  S-diff bound [ms]: np " << d_np.as_ms() << ", p "
            << d_p.as_ms() << ", edf " << d_edf.as_ms() << "\n"
            << "  mixed-policy sweep: " << swept << " instances, "
            << violations << " sim-over-WCRT violations\n"
            << "  match " << (match ? "ok" : "FAIL") << "\n";

  ceta::bench::write_json_file("BENCH_policy.json", [&](ceta::obs::JsonWriter&
                                                            w) {
    w.member("bench", "policy");
    w.member("tasks", static_cast<std::uint64_t>(g.num_tasks()));
    w.member("waters_seed", waters_seed);
    w.member("seed", seed);
    w.member("rta_iterations", static_cast<std::uint64_t>(kRtaIters));
    w.member("rta_np_per_sec", np_per_sec);
    w.member("rta_preemptive_per_sec", p_per_sec);
    w.member("rta_edf_per_sec", edf_per_sec);
    w.member("disparity_np_ns", d_np.count());
    w.member("disparity_preemptive_ns", d_p.count());
    w.member("disparity_edf_ns", d_edf.count());
    w.member("sweep_instances", static_cast<std::uint64_t>(swept));
    w.member("sweep_violations", static_cast<std::uint64_t>(violations));
    w.member("match", match);
    w.member("wall_seconds", wall);
  });

  return match ? 0 : 1;
}
