// Fig. 6(d) — incremental ratio of the optimized bound over the optimized
// simulation: (S-diff-B − Sim-B) / Sim-B, compared with the unoptimized
// (S-diff − Sim)/Sim ratio.
//
// Expected shape (paper): the optimized ratio stays small (below ~25% in
// most settings).

#include <iostream>

#include "bench_util.hpp"
#include "experiments/fig6cd.hpp"
#include "experiments/table.hpp"

int main(int argc, char** argv) {
  using namespace ceta;
  const bench::CliOptions cli = bench::parse_cli(argc, argv);

  Fig6cdConfig cfg;
  cfg.instances_per_point = 5;
  cfg.offsets_per_instance = 10;
  cfg.sim_measure_window = Duration::s(10);
  if (cli.fast) {
    cfg.chain_lengths = {5, 15};
    cfg.instances_per_point = 2;
    cfg.offsets_per_instance = 2;
    cfg.sim_measure_window = Duration::ms(500);
  } else if (cli.paper) {
    cfg.instances_per_point = 10;
    cfg.offsets_per_instance = 10;
    cfg.sim_measure_window = Duration::s(60);
  }
  if (cli.seed) cfg.seed = cli.seed;

  std::cout << "Fig 6(d): buffer optimization, incremental ratios (mean over "
            << cfg.instances_per_point << " instances)\n\n";

  const auto points = run_fig6cd(
      cfg, [](const std::string& msg) { std::cerr << "  [" << msg << "]\n"; });

  ConsoleTable table(
      {"chain len", "S-diff ratio", "S-diff-B ratio"});
  for (const Fig6cdPoint& p : points) {
    table.add_row({std::to_string(p.chain_length), fmt_percent(p.sdiff_ratio),
                   fmt_percent(p.sdiff_b_ratio)});
  }
  table.print(std::cout);
  if (!cli.csv_path.empty()) {
    write_file(cli.csv_path, table.to_csv());
    std::cout << "csv written to " << cli.csv_path << '\n';
  }
  return 0;
}
