// Performance microbenchmarks of the discrete-event simulator: jobs per
// second across graph sizes, channel modes and tracing.  After the run,
// the simulator's global counters (runs, events, jobs, preemptions) are
// written to BENCH_sim.json.

#include <benchmark/benchmark.h>

#include <iostream>
#include <numeric>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "sched/npfp_rta.hpp"
#include "sim/engine.hpp"
#include "waters/generator.hpp"

namespace {

using namespace ceta;

TaskGraph make_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (;;) {
    GnmDagOptions gopt;
    gopt.num_tasks = n;
    TaskGraph g = gnm_random_dag(gopt, rng);
    WatersAssignOptions wopt;
    wopt.num_ecus = 4;
    assign_waters_parameters(g, wopt, rng);
    if (analyze_response_times(g).all_schedulable) return g;
  }
}

std::int64_t total_jobs(const SimResult& res) {
  return std::accumulate(res.jobs_finished.begin(), res.jobs_finished.end(),
                         std::int64_t{0});
}

void BM_Simulate(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 1);
  SimOptions opt;
  opt.duration = Duration::s(1);
  std::int64_t jobs = 0;
  for (auto _ : state) {
    const SimResult res = simulate(g, opt);
    jobs += total_jobs(res);
    benchmark::DoNotOptimize(res.max_disparity.data());
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Simulate)->Arg(10)->Arg(20)->Arg(35);

void BM_SimulateWithTrace(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 1);
  SimOptions opt;
  opt.duration = Duration::s(1);
  opt.record_trace = true;
  std::int64_t jobs = 0;
  for (auto _ : state) {
    const SimResult res = simulate(g, opt);
    jobs += total_jobs(res);
    benchmark::DoNotOptimize(res.trace.tasks.data());
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateWithTrace)->Arg(10)->Arg(20);

void BM_SimulateWorstCaseModel(benchmark::State& state) {
  const TaskGraph g = make_graph(20, 2);
  SimOptions opt;
  opt.duration = Duration::s(1);
  opt.exec_model = ExecTimeModel::kWorstCase;
  std::int64_t jobs = 0;
  for (auto _ : state) {
    const SimResult res = simulate(g, opt);
    jobs += total_jobs(res);
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateWorstCaseModel);

void BM_SimulateBufferedChannels(benchmark::State& state) {
  Rng rng(3);
  TaskGraph g = merge_chains_at_sink(10, 10);
  WatersAssignOptions wopt;
  assign_waters_parameters(g, wopt, rng);
  // FIFO on both head channels.
  const auto sources = g.sources();
  for (TaskId s : sources) {
    g.set_buffer_size(s, g.successors(s).front(), 8);
  }
  SimOptions opt;
  opt.duration = Duration::s(1);
  std::int64_t jobs = 0;
  for (auto _ : state) {
    const SimResult res = simulate(g, opt);
    jobs += total_jobs(res);
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateBufferedChannels);

}  // namespace

int main(int argc, char** argv) {
  ceta::bench::maybe_start_profile_trace(argc > 0 ? argv[0] : nullptr);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  ceta::bench::write_json_file("BENCH_sim.json", [](ceta::obs::JsonWriter& w) {
    w.member("bench", "sim");
    ceta::bench::write_metrics_member(
        w, "global_metrics", ceta::obs::MetricsRegistry::global().snapshot());
  });
  std::cout << "simulator metrics written to BENCH_sim.json\n";
  return 0;
}
