// Simulator-core performance benchmarks and the old-vs-new acceptance
// gate.  Microbenchmarks compare the retained reference engine (binary
// heap, allocating token maps) against the rewritten calendar-queue
// Simulator for single runs and seeded replication batches; after the
// benchmark pass, main() runs a 100-seed trace-equivalence sweep
// (reference vs Simulator, every result field and every trace record)
// plus the timed replication workload — a fleet of short seeded
// Monte-Carlo runs through both engines, where the old engine pays its
// per-run construction cost and the resettable core does not — and
// writes the combined record to BENCH_sim.json.  Exit status 1 if any
// seed diverges — the
// perf_smoke_sim ctest runs this binary, and perf_smoke_sim_json
// revalidates the JSON with an independent parser.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <iostream>
#include <numeric>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "sched/npfp_rta.hpp"
#include "sim/engine.hpp"
#include "sim/montecarlo.hpp"
#include "sim/reference_engine.hpp"
#include "waters/generator.hpp"

namespace {

using namespace ceta;

TaskGraph make_graph(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  for (;;) {
    GnmDagOptions gopt;
    gopt.num_tasks = n;
    TaskGraph g = gnm_random_dag(gopt, rng);
    WatersAssignOptions wopt;
    wopt.num_ecus = 4;
    assign_waters_parameters(g, wopt, rng);
    if (analyze_response_times(g).all_schedulable) return g;
  }
}

std::int64_t total_jobs(const SimResult& res) {
  return std::accumulate(res.jobs_finished.begin(), res.jobs_finished.end(),
                         std::int64_t{0});
}

void BM_SimulateReference(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 1);
  SimOptions opt;
  opt.duration = Duration::s(1);
  std::int64_t jobs = 0;
  for (auto _ : state) {
    const SimResult res = sim::simulate_reference(g, opt);
    jobs += total_jobs(res);
    benchmark::DoNotOptimize(res.max_disparity.data());
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateReference)->Arg(10)->Arg(20)->Arg(35);

void BM_SimulatorRun(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 1);
  SimOptions opt;
  opt.duration = Duration::s(1);
  Simulator simulator(g, opt);  // construct once, reset per run — the new shape
  std::int64_t jobs = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const SimResult res = simulator.run(seed++);
    jobs += total_jobs(res);
    benchmark::DoNotOptimize(res.max_disparity.data());
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorRun)->Arg(10)->Arg(20)->Arg(35);

void BM_SimulatorRunWithTrace(benchmark::State& state) {
  const TaskGraph g = make_graph(static_cast<std::size_t>(state.range(0)), 1);
  SimOptions opt;
  opt.duration = Duration::s(1);
  opt.record_trace = true;
  Simulator simulator(g, opt);
  std::int64_t jobs = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const SimResult res = simulator.run(seed++);
    jobs += total_jobs(res);
    benchmark::DoNotOptimize(res.trace.tasks.data());
  }
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(jobs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorRunWithTrace)->Arg(10)->Arg(20);

void BM_SimulatorBatch(benchmark::State& state) {
  const TaskGraph g = make_graph(20, 1);
  SimOptions opt;
  opt.duration = Duration::ms(250);
  Simulator simulator(g, opt);
  const auto reps = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t sims = 0;
  for (auto _ : state) {
    const sim::SimBatchResult batch = simulator.run_batch(1, reps);
    sims += batch.replications;
    benchmark::DoNotOptimize(batch.max_disparity.data());
  }
  state.counters["sims/s"] = benchmark::Counter(
      static_cast<double>(sims), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorBatch)->Arg(16)->Arg(64);

void BM_MonteCarlo(benchmark::State& state) {
  const TaskGraph g = make_graph(20, 1);
  sim::MonteCarloOptions opt;
  opt.sim.duration = Duration::ms(250);
  opt.replications = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t sims = 0;
  for (auto _ : state) {
    const sim::MonteCarloResult res = sim::run_monte_carlo(g, opt);
    sims += res.replications;
    benchmark::DoNotOptimize(&res.tasks);
  }
  state.counters["sims/s"] = benchmark::Counter(
      static_cast<double>(sims), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MonteCarlo)->Arg(64);

// --- old-vs-new acceptance sweep (runs after the benchmarks) ---

bool same_result(const SimResult& a, const SimResult& b) {
  if (a.max_disparity != b.max_disparity) return false;
  if (a.jobs_observed != b.jobs_observed) return false;
  if (a.jobs_finished != b.jobs_finished) return false;
  if (a.max_response_time != b.max_response_time) return false;
  if (a.preemptions != b.preemptions) return false;
  if (a.trace.tasks.size() != b.trace.tasks.size()) return false;
  for (std::size_t t = 0; t < a.trace.tasks.size(); ++t) {
    const auto& ja = a.trace.tasks[t].jobs;
    const auto& jb = b.trace.tasks[t].jobs;
    if (ja.size() != jb.size()) return false;
    for (std::size_t k = 0; k < ja.size(); ++k) {
      if (ja[k].index != jb[k].index || ja[k].release != jb[k].release ||
          ja[k].start != jb[k].start || ja[k].finish != jb[k].finish ||
          ja[k].reads.size() != jb[k].reads.size()) {
        return false;
      }
      for (std::size_t r = 0; r < ja[k].reads.size(); ++r) {
        if (ja[k].reads[r].from != jb[k].reads[r].from ||
            ja[k].reads[r].producer_job != jb[k].reads[r].producer_job ||
            ja[k].reads[r].producer_release !=
                jb[k].reads[r].producer_release) {
          return false;
        }
      }
    }
  }
  return true;
}

struct SweepOutcome {
  std::size_t graph_tasks = 0;
  std::uint64_t seeds_checked = 0;
  std::uint64_t replications = 0;
  double reference_ns = 0.0;  ///< traced single run, old engine
  double simulator_ns = 0.0;  ///< traced single run, new core
  double fleet_reference_s = 0.0;  ///< replication fleet, old engine
  double fleet_simulator_s = 0.0;  ///< replication fleet, new core
  std::uint64_t events = 0;
  bool match = true;
};

/// 100 seeds through both engines with full traces: every field and
/// every job record must agree (the rewrite's bit-identity contract).
/// The speedup/throughput numbers come from an untraced replication
/// fleet timed through both engines.
SweepOutcome run_equivalence_sweep() {
  using Clock = std::chrono::steady_clock;
  SweepOutcome out;
  const TaskGraph g = make_graph(20, 7);
  out.graph_tasks = g.num_tasks();

  SimOptions opt;
  opt.duration = Duration::ms(400);
  opt.record_trace = true;
  Simulator simulator(g, opt);
  double ref_ns = 0.0;
  double new_ns = 0.0;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    opt.seed = seed;
    const auto r0 = Clock::now();
    const SimResult oldr = sim::simulate_reference(g, opt);
    const auto r1 = Clock::now();
    const SimResult newr = simulator.run(seed);
    const auto r2 = Clock::now();
    ref_ns += std::chrono::duration<double, std::nano>(r1 - r0).count();
    new_ns += std::chrono::duration<double, std::nano>(r2 - r1).count();
    ++out.seeds_checked;
    if (!same_result(oldr, newr)) {
      std::cerr << "FAIL: reference and Simulator diverged at seed " << seed
                << "\n";
      out.match = false;
      return out;
    }
  }
  out.reference_ns = ref_ns / static_cast<double>(out.seeds_checked);
  out.simulator_ns = new_ns / static_cast<double>(out.seeds_checked);

  // Replication workload: a Monte-Carlo fleet of short seeded runs (the
  // 10^5-replications-per-sweep regime of DESIGN.md S11), untraced.  The
  // old engine rebuilds channels/tables every run — exactly the per-run
  // cost the resettable Simulator amortizes away.  Three passes each,
  // best taken, to keep the record stable on noisy shared machines.
  SimOptions ropt;
  ropt.duration = Duration::ms(10);
  const std::uint64_t fleet = 2000;
  Simulator fleet_sim(g, ropt);
  double ref_best = 1e300;
  double new_best = 1e300;
  for (int pass = 0; pass < 3; ++pass) {
    const auto f0 = Clock::now();
    for (std::uint64_t k = 1; k <= fleet; ++k) {
      ropt.seed = k;
      const SimResult r = sim::simulate_reference(g, ropt);
      benchmark::DoNotOptimize(r.max_disparity.data());
    }
    const auto f1 = Clock::now();
    const std::uint64_t before = fleet_sim.events_processed();
    const sim::SimBatchResult batch = fleet_sim.run_batch(1, fleet);
    const auto f2 = Clock::now();
    benchmark::DoNotOptimize(batch.replications);
    ref_best =
        std::min(ref_best, std::chrono::duration<double>(f1 - f0).count());
    new_best =
        std::min(new_best, std::chrono::duration<double>(f2 - f1).count());
    out.replications = batch.replications;
    out.events = fleet_sim.events_processed() - before;
  }
  out.fleet_reference_s = ref_best;
  out.fleet_simulator_s = new_best;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ceta::bench::maybe_start_profile_trace(argc > 0 ? argv[0] : nullptr);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const SweepOutcome sweep = run_equivalence_sweep();
  // Acceptance speedup is measured on the replication workload: a fleet
  // of seeded Monte-Carlo runs, old engine constructing per run vs the
  // resettable Simulator reusing its arenas across run_batch.
  const double speedup = sweep.fleet_simulator_s > 0.0
                             ? sweep.fleet_reference_s / sweep.fleet_simulator_s
                             : 0.0;
  const double sims_per_sec =
      sweep.fleet_simulator_s > 0.0
          ? static_cast<double>(sweep.replications) / sweep.fleet_simulator_s
          : 0.0;
  const double events_per_sec =
      sweep.fleet_simulator_s > 0.0
          ? static_cast<double>(sweep.events) / sweep.fleet_simulator_s
          : 0.0;
  ceta::bench::write_json_file("BENCH_sim.json", [&](ceta::obs::JsonWriter& w) {
    w.member("bench", "sim_montecarlo_vs_reference");
    w.member("graph_tasks", static_cast<std::int64_t>(sweep.graph_tasks));
    w.member("seeds_checked", static_cast<std::int64_t>(sweep.seeds_checked));
    w.member("match", sweep.match);
    w.member("reference_ns", sweep.reference_ns);
    w.member("simulator_ns", sweep.simulator_ns);
    w.member("fleet_reference_s", sweep.fleet_reference_s);
    w.member("fleet_simulator_s", sweep.fleet_simulator_s);
    w.member("speedup", speedup);
    w.member("replications", static_cast<std::int64_t>(sweep.replications));
    w.member("events", static_cast<std::int64_t>(sweep.events));
    w.member("sims_per_sec", sims_per_sec);
    w.member("events_per_sec", events_per_sec);
    ceta::bench::write_metrics_member(
        w, "global_metrics", ceta::obs::MetricsRegistry::global().snapshot());
  });
  if (!sweep.match) {
    std::cerr << "BENCH_sim.json written (match: false)\n";
    return 1;
  }
  std::cout << "100-seed sweep: reference == Simulator; replication fleet "
            << "speedup " << speedup << "x; " << sims_per_sec << " sims/s, "
            << events_per_sec << " events/s (BENCH_sim.json)\n";
  return 0;
}
